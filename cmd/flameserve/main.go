// Command flameserve is the distributed-campaign coordinator: it
// shards a fault-injection campaign's trial grid, leases shards to
// flameworker processes over HTTP, survives worker deaths (lease
// expiry + re-lease with backoff, poison-shard quarantine) and its own
// (checkpoint + per-shard event streams in -state), and merges the
// returned streams into a report byte-identical to the single-process
// flameinject run of the same configuration.
//
// Usage:
//
//	flameserve -addr :8077 -state ./campaign-state -trials 1000
//	flameworker -url http://host:8077        # on each machine
//
// Exit codes: 0 complete; 2 complete but uncovered outcomes under the
// paper's fault model; 3 interrupted or degraded (resumable: run again
// with the same -state).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flame/internal/bench"
	"flame/internal/core"
	"flame/internal/dist"
	"flame/internal/flame"
	"flame/internal/gpu"
)

var quickSuite = []string{
	"Triad", "SGEMM", "Histogram", "BFS",
	"LUD", "NW", "PF", "SRAD",
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	state := flag.String("state", "flameserve-state", "state directory (checkpoint + shard streams); reuse to resume")
	shardSize := flag.Int("shard-size", 25, "max trials per shard")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "lease deadline without a heartbeat")
	heartbeat := flag.Duration("heartbeat", 0, "heartbeat cadence told to workers (0 = lease-ttl/3)")
	quarantine := flag.Int("quarantine-after", 3, "quarantine a shard after this many failed leases")
	dashboard := flag.Bool("dashboard", false, "serve the live HTML dashboard at GET /dashboard (Prometheus metrics are always at GET /metrics)")

	benchList := flag.String("bench", "", "comma-separated benchmark names (default: -suite)")
	suite := flag.String("suite", "quick", "benchmark suite: quick or all")
	schemeFlag := flag.String("scheme", "flame", "resilience scheme")
	archName := flag.String("arch", "GTX480", "GPU architecture: GTX480, TITANX, GV100, RTX2060")
	wcdl := flag.Int("wcdl", 20, "sensor WCDL (cycles)")
	extend := flag.Bool("extend", true, "enable region extension")
	trials := flag.Int("trials", 100, "injection trials per benchmark")
	seed := flag.Uint64("seed", 1, "campaign seed")
	modelFlag := flag.String("model", "data", "fault model: data or full")
	strikes := flag.Int("strikes", 1, "strikes armed per trial")
	budget := flag.Int64("budget", 8, "hang watchdog: cycle budget multiplier")
	trialTimeout := flag.Duration("trial-timeout", 0, "wall-clock timeout per trial on workers (0 = off)")
	fingerprint := flag.Bool("fingerprint", false, "trace strike propagation on workers: cycle depth, detection latency, SDC corruption fingerprints (outcomes unchanged)")
	jsonOut := flag.String("json", "", "write the final report JSON to this file (- for stdout)")
	flag.Parse()

	scheme, err := core.SchemeByName(*schemeFlag)
	if err != nil {
		fail("%v (want one of %s)", err, strings.Join(core.SchemeFlagNames(), ", "))
	}
	arch, err := gpu.ConfigByName(*archName)
	if err != nil {
		fail("%v", err)
	}
	if _, err := flame.ParseFaultModel(*modelFlag); err != nil {
		fail("%v", err)
	}
	var names []string
	switch {
	case *benchList != "":
		for _, n := range strings.Split(*benchList, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	case *suite == "all":
		for _, b := range bench.All() {
			names = append(names, b.Name)
		}
	case *suite == "quick":
		names = quickSuite
	default:
		fail("unknown suite %q (want quick or all)", *suite)
	}

	info := dist.CampaignInfo{
		Arch:           arch,
		Scheme:         scheme.FlagName(),
		WCDL:           *wcdl,
		ExtendRegions:  *extend,
		Benchmarks:     names,
		Trials:         *trials,
		Seed:           *seed,
		Model:          *modelFlag,
		StrikesPerTrial: *strikes,
		HangBudgetMult: *budget,
		TrialTimeoutMS: trialTimeout.Milliseconds(),
		Trace:          *fingerprint,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	fr, err := dist.Serve(ctx, dist.ServeConfig{
		Addr: *addr,
		Coord: dist.CoordConfig{
			Info: info, StateDir: *state, ShardSize: *shardSize,
			LeaseTTL: *leaseTTL, Heartbeat: *heartbeat, QuarantineAfter: *quarantine,
			Dashboard: *dashboard, Logf: logf,
		},
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fail("%v", err)
	}
	if fr == nil {
		fail("no report")
	}

	fmt.Print(fr.Report)
	if !fr.Integrity.Clean() || fr.Integrity.Missing > 0 {
		fmt.Printf("stream integrity: %s\n", fr.Integrity)
	}
	for _, s := range fr.Quarantined {
		fmt.Printf("QUARANTINED %s: excluded after repeated lease failures\n", s)
	}
	if interrupted {
		fmt.Printf("interrupted: partial report; resume with the same -state %s\n", *state)
	}

	if *jsonOut != "" {
		data, err := fr.Report.JSON()
		if err != nil {
			fail("json: %v", err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fail("%v", err)
		}
	}

	switch {
	case interrupted || !fr.Complete:
		os.Exit(3)
	case *modelFlag == "data" && scheme.Recoverable() && scheme.Detects() &&
		(fr.Report.Fleet.SDC > 0 || fr.Report.Fleet.Hang > 0):
		os.Exit(2)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flameserve: "+format+"\n", args...)
}

func fail(format string, args ...any) {
	logf(format, args...)
	os.Exit(1)
}
