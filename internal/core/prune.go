// Trial pruning: pre-classify injection trials whose armed strike
// provably cannot change final memory, control flow, timing, or the
// detection outcome, without running the simulator. The simulator is
// deterministic, so a trial's pre-injection execution IS the golden
// schedule: recording the golden run's per-instruction event stream once
// (under the scheme's own controller hooks, so RBQ stalls and boundary
// verification shape it exactly as a trial would see it) lets a cheap
// walker replay the injector's strike-placement logic — including its
// lane, bit, and sensor-delay RNG draws — against that schedule and
// decide, for each would-be strike, whether the corrupted register is
// dead (statically outside flame.StoreReachSlice, or dynamically never
// read again by the struck lane) AND whether its sensor report escapes the main
// launch. Trials where every fired strike is dead and undetected are
// Masked with golden-identical results; trials whose strikes never fire
// are NoInjection. Everything else is simulated.
//
// Detecting (runtime-controller) schemes are handled by a static
// detection-outcome model rather than a gate. Detection is
// value-independent: Controller.onCycle calls Injector.DetectionDue at
// the end of every processed cycle of the main launch (and OnAdvance
// bounds cycle skips to NextDetection, so a due detection is never
// jumped over), while Steps never see the injector (the engine attaches
// it to the main launch only). A strike fired at cycle c with sensor
// delay delta therefore recovers iff c+delta <= the main launch's last
// processed cycle — equivalently c+delta < mainCycles, the launch's
// cycle count — and a dead strike whose report comes due after the main
// launch retired is Masked with the golden's timing, bit for bit.
// Anything detected in-window re-executes, so those trials simulate.
//
// Remaining soundness gates (any failure disables pruning for the
// benchmark, and the campaign falls back to full simulation):
//
//   - Every program in the workload (main kernel and Steps) must be
//     definitely-assigned: liveness at the entry block is empty, so no
//     block or later launch reads a register it did not first write.
//     This is what keeps a dead-corrupted register from leaking across
//     block boundaries on recycled warp register files — and equally
//     what makes SKIPPING a trial safe for the next trial on a pooled
//     engine (the register garbage a simulated trial would have left
//     behind is unobservable either way).
//   - The recorded schedule must fit the event cap (memory guard).
//
// Per-trial, PruneTrial additionally refuses trials with extra hooks
// attached (observers could see the skipped execution).
package core

import (
	"fmt"
	"math/bits"
	"math/rand"

	"flame/internal/analysis"
	"flame/internal/flame"
	"flame/internal/gpu"
	"flame/internal/isa"
	"flame/internal/kernel"
)

// pruneEvent is one executed instruction of the golden main-kernel
// launch, as the injector's Observe hook would have seen it.
type pruneEvent struct {
	cyc  int64
	mask uint32 // executing lanes holding register files (pickLane's set)
	pc   int32
	warp int32 // warp slot within its SM (stable, printed in descriptions)
	sm   int32
}

// DefaultPruneEventCap bounds the recorded schedule (events are 24
// bytes; the default caps a benchmark's index near 100 MB).
const DefaultPruneEventCap = 4 << 20

// PruneIndex is the per-benchmark pruning oracle: the golden schedule,
// the last-use table, and the dataflow slices.
type PruneIndex struct {
	events  []pruneEvent
	lastUse map[uint64][]int32 // warpKey -> reg -> last reading event seq+1
	// vuln[i] is the lane mask of event i's destination-register copies
	// that some later instruction of the same warp slot reads before an
	// overwriting def: the per-lane refinement of the last-use table.
	// Registers are lane-private (the ISA has no cross-lane reads), so a
	// strike on a lane outside vuln[i] corrupts a value that lane never
	// observes again. Zero when event i defines nothing.
	vuln       []uint32
	storeReach map[isa.Reg]bool
	acl        map[isa.Reg]bool
	window     int64
	maxDelay   int
	// mainCycles is the golden main launch's cycle count; its last
	// processed cycle is mainCycles-1, the final DetectionDue probe.
	mainCycles int64
	// detecting marks schemes whose controller turns an in-window
	// sensor report into a recovery (strikes must escape the main
	// launch to stay prunable).
	detecting bool
	disabled  string // non-empty: why pruning is off for this benchmark
}

// Disabled returns the reason pruning is unavailable for this
// benchmark, or "" when the index is live.
func (px *PruneIndex) Disabled() string { return px.disabled }

// Events returns the recorded golden schedule length (0 when disabled).
func (px *PruneIndex) Events() int { return len(px.events) }

func warpKey(smID, warpID int32) uint64 {
	return uint64(uint32(smID))<<32 | uint64(uint32(warpID))
}

// BuildPruneIndex records the golden main-kernel schedule for a
// workload and prepares the pruning oracle. eventCap <= 0 selects
// DefaultPruneEventCap. A disabled index is still returned (never nil):
// PruneTrial on it refuses every trial and Disabled says why.
func BuildPruneIndex(cfg gpu.Config, spec *KernelSpec, g *Golden, eventCap int) *PruneIndex {
	if eventCap <= 0 {
		eventCap = DefaultPruneEventCap
	}
	px := &PruneIndex{window: g.Window, maxDelay: g.MaxDelay}
	progs := []*isa.Program{g.Comp.Prog}
	for _, sc := range g.StepComps {
		progs = append(progs, sc.Prog)
	}
	for i, p := range progs {
		lv := analysis.ComputeLiveness(kernel.Build(p))
		if lv.LiveIn[0].Count() != 0 {
			px.disabled = fmt.Sprintf("program %d reads registers it did not write (entry liveness %d)", i, lv.LiveIn[0].Count())
			return px
		}
	}

	// Record the golden main launch on a throwaway device. The injector
	// only observes the main kernel (launchOne attaches it nowhere
	// else), so Steps need no recording. Detecting schemes run under
	// their own (injector-less) controller so RBQ descheduling and
	// boundary verification shape the recorded schedule exactly as a
	// trial's controller would.
	dev, err := gpu.NewDevice(cfg, spec.MemBytes)
	if err != nil {
		px.disabled = err.Error()
		return px
	}
	copy(dev.Mem.Words(), g.InitMem)
	prog := g.Comp.Prog
	px.lastUse = map[uint64][]int32{}
	overflow := false
	var uses [4]isa.Reg
	hooks := &gpu.Hooks{OnExecuted: func(d *gpu.Device, sm *gpu.SM, w *gpu.Warp, pc int) {
		if overflow {
			return
		}
		if len(px.events) >= eventCap {
			overflow = true
			return
		}
		var mask uint32
		em := w.LastExecMask()
		for l := 0; l < len(w.Regs); l++ {
			if em&(1<<l) != 0 && w.Regs[l] != nil {
				mask |= 1 << l
			}
		}
		px.events = append(px.events, pruneEvent{
			cyc: d.Cyc, mask: mask, pc: int32(pc),
			warp: int32(w.ID), sm: int32(sm.ID),
		})
		seq := int32(len(px.events)) // seq+1 encoding; 0 = never read
		key := warpKey(int32(sm.ID), int32(w.ID))
		lu := px.lastUse[key]
		if lu == nil {
			lu = make([]int32, prog.NumRegs)
			px.lastUse[key] = lu
		}
		for _, r := range prog.Insts[pc].Uses(uses[:0]) {
			lu[r] = seq
		}
	}}
	if ctl := g.Comp.Controller(); ctl != nil {
		px.detecting = true
		hooks = gpu.CombineHooks(ctl.Hooks(), hooks)
	}
	launch := &gpu.Launch{Prog: prog, Grid: spec.Grid, Block: spec.Block, Params: spec.Params}
	st, err := dev.Run(launch, hooks)
	if err != nil {
		px.events, px.lastUse = nil, nil
		px.disabled = fmt.Sprintf("golden recording failed: %v", err)
		return px
	}
	px.mainCycles = st.Cycles
	if overflow {
		px.events, px.lastUse = nil, nil
		px.disabled = fmt.Sprintf("golden schedule exceeds %d events", eventCap)
		return px
	}
	px.storeReach = flame.StoreReachSlice(prog)
	px.acl = flame.AddressControlSlice(prog)
	px.buildVuln(prog)
	return px
}

// buildVuln computes the per-event vulnerable-lane masks with one
// backward walk over the recorded schedule, maintaining per warp slot a
// future-read lane mask per register (which lanes will read the
// register before an overwriting def). Within one instruction reads
// precede the write, so walking backward the def is killed first and
// the uses are added after — a def that reads itself (add r0, r0, 1)
// still counts as a future read of the previous value. Later launches
// need no terms: the definite-assignment gate already proved no Step
// reads a register it did not first write.
func (px *PruneIndex) buildVuln(prog *isa.Program) {
	px.vuln = make([]uint32, len(px.events))
	future := map[uint64][]uint32{}
	var uses [4]isa.Reg
	for evi := len(px.events) - 1; evi >= 0; evi-- {
		ev := &px.events[evi]
		in := &prog.Insts[ev.pc]
		key := warpKey(ev.sm, ev.warp)
		fr := future[key]
		if fr == nil {
			fr = make([]uint32, prog.NumRegs)
			future[key] = fr
		}
		if d := in.Defs(); d != isa.NoReg {
			px.vuln[evi] = ev.mask & fr[d]
			// Unlike the static solver, a predicated def kills here:
			// ev.mask is lastExec (active ∧ guard), so every lane in it
			// really executed the write.
			fr[d] &^= ev.mask
		}
		for _, r := range in.Uses(uses[:0]) {
			fr[r] |= ev.mask
		}
	}
}

// PruneTrial decides a trial without simulation when every armed strike
// either never fires or fires into a provably dead register with a
// sensor report that provably escapes the main launch. It mirrors
// flame.Injector.Observe event-for-event — including its RNG draws — so
// a pruned TrialResult is bit-identical (every field, including the
// Description) to what Engine.RunTrial would have produced. The second
// return is false when the trial must be simulated.
func (px *PruneIndex) PruneTrial(g *Golden, ts TrialSpec) (*TrialResult, bool) {
	if px == nil || px.disabled != "" || ts.Hooks != nil {
		return nil, false
	}
	prog := g.Comp.Prog
	rng := rand.New(rand.NewSource(ts.Seed))
	tr := &TrialResult{Cycles: g.Window}
	evi := 0
	for _, arm := range ts.Arms {
		fired := false
		for ; evi < len(px.events); evi++ {
			ev := &px.events[evi]
			if ev.cyc < arm {
				continue // Observe returns before any RNG draw
			}
			lanes := bits.OnesCount32(ev.mask)
			if lanes == 0 {
				continue // pickLane finds no lane; stays armed, no draw
			}
			laneIdx := rng.Intn(lanes)
			bit := uint32(1) << uint(rng.Intn(32))
			in := &prog.Insts[ev.pc]
			d := in.Defs()
			switch {
			case d != isa.NoReg && in.Origin != isa.OrigDup &&
				(ts.Model == flame.FullSite || !px.acl[d]):
				// Register-destination strike: prunable iff the corrupted
				// value is dead — statically outside the store-reach
				// slice, or never read again by the struck lane (uses at
				// the firing event itself read the pre-corruption value:
				// Observe runs post-execute). Registers are lane-private,
				// so only the struck lane's future reads matter; the
				// warp-level last-use table is the coarser bound vuln
				// refines.
				lane := nthSetBit(ev.mask, laneIdx)
				if px.storeReach[d] && px.vuln[evi]&(1<<uint(lane)) != 0 {
					return nil, false
				}
				// Mirror Observe's sensor-delay draw, then apply the
				// static detection-outcome model: the controller probes
				// DetectionDue on every processed cycle of the main
				// launch (last is mainCycles-1) and nowhere afterwards,
				// so a report due before that recovers (simulate) and a
				// later one provably escapes (the strike stays Masked).
				detectAt := ev.cyc
				if px.maxDelay > 0 {
					detectAt += 1 + int64(rng.Intn(px.maxDelay))
				}
				if px.detecting && detectAt < px.mainCycles {
					return nil, false
				}
				tr.Strikes++
				if px.acl[d] {
					tr.ExcludedStrikes++
				}
				if tr.Strikes == 1 {
					tr.Description = fmt.Sprintf("cycle %d: flipped bit %#x of %s (lane %d, warp %d, SM %d, inst %d: %s)",
						ev.cyc, bit, d, lane, ev.warp, ev.sm, ev.pc, in.String())
				}
				fired = true
			case in.Op == isa.OpSt && in.Space == isa.SpaceGlobal:
				// Store-data strike: corrupts memory directly; simulate.
				return nil, false
			default:
				continue // not corruptible; RNG consumed, stays armed
			}
			evi++ // the next strike starts at the next observed event
			break
		}
		if !fired {
			break // this strike never fires, so no later strike arms
		}
	}
	if tr.Strikes == 0 {
		tr.Outcome = OutcomeNoInjection
	} else {
		tr.Outcome = OutcomeMasked
	}
	return tr, true
}

// lastUseOf reads the last-use table defensively: a warp that never
// read any register has no table at all (0 = never read).
func lastUseOf(lu []int32, r isa.Reg) int32 {
	if lu == nil {
		return 0
	}
	return lu[r]
}

// nthSetBit returns the position of the n-th (0-based) set bit of mask,
// mirroring pickLane's lane-list indexing.
func nthSetBit(mask uint32, n int) int {
	for {
		b := bits.TrailingZeros32(mask)
		if n == 0 {
			return b
		}
		mask &^= 1 << uint(b)
		n--
	}
}
