package core

import (
	"math"
	"testing"

	"flame/internal/flame"
	"flame/internal/gpu"
	"flame/internal/isa"
)

func censusArch() gpu.Config {
	cfg := gpu.GTX480()
	cfg.NumSMs = 2
	return cfg
}

func buildCensus(t *testing.T, spec *KernelSpec, opt Options) (*SiteCensus, *Golden) {
	t.Helper()
	g, err := GoldenRun(censusArch(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	px := BuildPruneIndex(censusArch(), spec, g, 0)
	if px.Disabled() != "" {
		t.Fatalf("prune index disabled: %s", px.Disabled())
	}
	c, err := px.Census(g, flame.DataSlice)
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

// The census is an exact partition: every arm cycle of [0, ArmSpan)
// lands in exactly one bucket, so the buckets sum back to the span.
func TestCensusPartitionsArmSpan(t *testing.T) {
	for _, spec := range []*KernelSpec{saxpySpec(), deadTailSpec()} {
		c, g := buildCensus(t, spec, Options{Scheme: Baseline})
		if c.Span != g.ArmSpan() {
			t.Fatalf("%s: span %d vs %d", spec.Name, c.Span, g.ArmSpan())
		}
		sum := float64(c.DeadStatic) + c.DeadDynamic + c.LiveRegister +
			float64(c.StoreData) + float64(c.NoInjection)
		if math.Abs(sum-float64(c.Span)) > 1e-6 {
			t.Fatalf("%s: buckets sum to %.6f, span %d: %+v", spec.Name, sum, c.Span, c)
		}
		if c.StoreData == 0 {
			t.Errorf("%s: no store-data arms despite st.global", spec.Name)
		}
	}
	// deadTailSpec's r20..r23 chain feeds no store: static dead mass.
	c, _ := buildCensus(t, deadTailSpec(), Options{Scheme: Baseline})
	if c.DeadStatic == 0 {
		t.Errorf("deadtail: no static-dead arms: %+v", c)
	}
}

// divergentReadSpec defines a store-reach register read back by only
// half the warp: the lane-aware census must split that event's arms
// fractionally between DeadDynamic and LiveRegister.
func divergentReadSpec() *KernelSpec {
	const src = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    setp.lt p0, r0, 16
	    ld.param r5, [0]
	    shl r4, r3, 2
	    add r6, r5, r4
	    ld.global r7, [r6]
	    mov r8, 0
	@p0 add r8, r7, 1
	@p0 st.global [r6], r8
	    exit
	`
	const n = 2 * 32
	return &KernelSpec{
		Name:     "divread",
		Prog:     isa.MustParse("divread", src),
		Grid:     isa.Dim3{X: 2},
		Block:    isa.Dim3{X: 32},
		Params:   []uint32{0},
		MemBytes: 1 << 12,
		Setup: func(mem []uint32) {
			for i := 0; i < n; i++ {
				mem[i] = uint32(10 * i)
			}
		},
		Validate: func(mem []uint32) error {
			for i := 0; i < n; i++ {
				want := uint32(10 * i)
				if i%32 < 16 {
					want++
				}
				if mem[i] != want {
					return errAt(i, mem[i])
				}
			}
			return nil
		},
	}
}

// The ld.global r7 event executes on all 32 lanes but only lanes 0..15
// read r7 afterwards (the @p0 add): its arms must split half dead,
// half live — fractional mass the warp-level last-use table cannot
// produce.
func TestCensusLaneAwareFractionalSplit(t *testing.T) {
	c, _ := buildCensus(t, divergentReadSpec(), Options{Scheme: Baseline})
	if c.DeadDynamic <= 0 || c.LiveRegister <= 0 {
		t.Fatalf("no fractional split: %+v", c)
	}
	if frac := c.DeadDynamic - math.Trunc(c.DeadDynamic); frac == 0 {
		t.Fatalf("dead-dynamic mass %v is integral; lane split missing: %+v", c.DeadDynamic, c)
	}
	sum := float64(c.DeadStatic) + c.DeadDynamic + c.LiveRegister +
		float64(c.StoreData) + float64(c.NoInjection)
	if math.Abs(sum-float64(c.Span)) > 1e-6 {
		t.Fatalf("buckets sum to %.6f, span %d: %+v", sum, c.Span, c)
	}
}

// A disabled index (entry-liveness violation or overflow) must refuse
// the census rather than return a bogus partition.
func TestCensusRefusesDisabledIndex(t *testing.T) {
	spec := deadTailSpec()
	g, err := GoldenRun(censusArch(), spec, Options{Scheme: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	px := BuildPruneIndex(censusArch(), spec, g, 8) // absurd event cap: overflow
	if px.Disabled() == "" {
		t.Fatal("tiny event cap did not disable the index")
	}
	if _, err := px.Census(g, flame.DataSlice); err == nil {
		t.Fatal("census on a disabled index succeeded")
	}
}
