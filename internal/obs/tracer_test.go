package obs

import (
	"encoding/json"
	"testing"

	"flame/internal/bench"
	"flame/internal/core"
	"flame/internal/flame"
	"flame/internal/gpu"
)

func tracerTestGolden(t *testing.T, cfg gpu.Config) (*core.KernelSpec, *core.Golden) {
	t.Helper()
	b, err := bench.ByName("Triad")
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec()
	scheme, err := core.SchemeByName("flame")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Scheme: scheme, WCDL: 20, ExtendRegions: true}
	g, err := core.GoldenRun(cfg, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return spec, g
}

func runTraced(t *testing.T, cfg gpu.Config, spec *core.KernelSpec, g *core.Golden,
	obsv core.TrialObserver, seed int64) *core.TrialResult {
	t.Helper()
	tr := core.RunTrial(cfg, spec, g, core.TrialSpec{
		Arms:      []int64{100},
		Model:     flame.DataSlice,
		Seed:      seed,
		MaxCycles: g.HangBudget(8),
		Observer:  obsv,
	})
	return tr
}

// TestTracerRecords: an injected trial under the tracer carries a
// propagation record whose fields satisfy the basic invariants — the
// store (if reached) is after the strike, and detection latency is
// non-negative when detection fired.
func TestTracerRecords(t *testing.T) {
	cfg := gpu.GTX480()
	cfg.NumSMs = 2
	spec, g := tracerTestGolden(t, cfg)

	sawStore := false
	for seed := int64(0); seed < 8; seed++ {
		tr := runTraced(t, cfg, spec, g, NewTracer(), seed)
		if tr.Strikes == 0 {
			if tr.Prop != nil {
				t.Fatalf("seed %d: record on a no-strike trial", seed)
			}
			continue
		}
		p := tr.Prop
		if p == nil {
			t.Fatalf("seed %d: injected trial has no propagation record", seed)
		}
		if p.StoreCycle >= 0 {
			sawStore = true
			if p.Depth != p.StoreCycle-p.StrikeCycle || p.Depth < 0 {
				t.Fatalf("seed %d: depth %d inconsistent with strike %d store %d",
					seed, p.Depth, p.StrikeCycle, p.StoreCycle)
			}
		} else if p.Depth != -1 {
			t.Fatalf("seed %d: no store but depth %d", seed, p.Depth)
		}
		if tr.Detections > 0 && p.DetectLatency < 0 {
			t.Fatalf("seed %d: detected trial with latency %d", seed, p.DetectLatency)
		}
	}
	if !sawStore {
		t.Fatal("no seed in 0..7 propagated to a store; invariant checks never ran")
	}
}

// TestTracerReuseMatchesFresh: a tracer reused across trials (the
// campaign worker pattern) must reset completely in BeginTrial — every
// record equals the one a fresh tracer produces for the same trial.
func TestTracerReuseMatchesFresh(t *testing.T) {
	cfg := gpu.GTX480()
	cfg.NumSMs = 2
	spec, g := tracerTestGolden(t, cfg)

	shared := NewTracer()
	for seed := int64(0); seed < 6; seed++ {
		reused := runTraced(t, cfg, spec, g, shared, seed)
		fresh := runTraced(t, cfg, spec, g, NewTracer(), seed)
		a, _ := json.Marshal(reused.Prop)
		b, _ := json.Marshal(fresh.Prop)
		if string(a) != string(b) {
			t.Fatalf("seed %d: reused tracer diverged from fresh:\n%s\n%s", seed, a, b)
		}
	}
}

// TestTracerSkipSafe: the record is bit-identical with and without
// event-driven cycle skipping — the tracer observes only executed
// instructions, which skipping never elides.
func TestTracerSkipSafe(t *testing.T) {
	fast := gpu.GTX480()
	fast.NumSMs = 2
	naive := fast
	naive.NoCycleSkip = true
	spec, g := tracerTestGolden(t, fast)

	for seed := int64(0); seed < 6; seed++ {
		a, _ := json.Marshal(runTraced(t, fast, spec, g, NewTracer(), seed).Prop)
		b, _ := json.Marshal(runTraced(t, naive, spec, g, NewTracer(), seed).Prop)
		if string(a) != string(b) {
			t.Fatalf("seed %d: cycle skipping changed the record:\n%s\n%s", seed, a, b)
		}
	}
}
