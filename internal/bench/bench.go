// Package bench re-implements the paper's 34 Table-I benchmark
// applications as kernels in the virtual GPU ISA, with deterministic
// input generators and golden-output validators. Each kernel reproduces
// the structural properties that matter to Flame — memory/register
// anti-dependence density, barrier patterns, atomics, divergence and
// arithmetic intensity — at sizes that simulate quickly.
package bench

import (
	"fmt"
	"sort"

	"flame/internal/core"
	"flame/internal/isa"
)

// Benchmark is one Table-I workload.
type Benchmark struct {
	// Name is the paper's abbreviation (SGEMM, LUD, ...).
	Name string
	// Suite is the originating benchmark suite.
	Suite string
	// Description summarizes the computation.
	Description string

	Src    string
	Grid   isa.Dim3
	Block  isa.Dim3
	Params []uint32
	// Steps are additional kernel launches of multi-kernel applications,
	// run after the main kernel on the same device.
	Steps    []core.Step
	MemBytes int
	Setup    func(mem []uint32)
	Validate func(mem []uint32) error

	// ExtensionCandidate marks kernels whose barrier pattern qualifies
	// for the Section III-E region-extension optimization.
	ExtensionCandidate bool

	prog *isa.Program
}

// Prog returns the assembled kernel (parsed once, then cached).
func (b *Benchmark) Prog() *isa.Program {
	if b.prog == nil {
		b.prog = isa.MustParse(b.Name, b.Src)
	}
	return b.prog
}

// Spec converts the benchmark into a runnable core.KernelSpec.
func (b *Benchmark) Spec() *core.KernelSpec {
	return &core.KernelSpec{
		Name:     b.Name,
		Prog:     b.Prog(),
		Grid:     b.Grid,
		Block:    b.Block,
		Params:   b.Params,
		Steps:    b.Steps,
		MemBytes: b.MemBytes,
		Setup:    b.Setup,
		Validate: b.Validate,
	}
}

var registry []*Benchmark

func register(b *Benchmark) *Benchmark {
	registry = append(registry, b)
	return b
}

// All returns every benchmark sorted by name.
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// ---- Shared helpers for input generation and golden math ----

// d3 builds a Dim3 tersely.
func d3(x, y, z int) isa.Dim3 { return isa.Dim3{X: x, Y: y, Z: z} }

// lcg is the deterministic input generator shared by all benchmarks.
type lcg uint32

func (r *lcg) next() uint32 {
	*r = *r*1664525 + 1013904223
	return uint32(*r)
}

// unitFloat returns a float in [1, 2) from the generator (bit trick keeps
// magnitudes tame so float comparisons stay exact).
func (r *lcg) unitFloat() float32 {
	return isa.F32FromBits(r.next()>>9 | 0x3F800000)
}

// f is shorthand for float bits.
func f(v float32) uint32 { return isa.F32Bits(v) }

// ff decodes float bits.
func ff(v uint32) float32 { return isa.F32FromBits(v) }

// alu mirrors the simulator's ALU semantics for golden computation.
func alu(op isa.Opcode, a, b, c uint32) uint32 { return isa.EvalALU(op, a, b, c) }

// fadd/fmul/fsub/fmaf mirror the simulator's float ops bit-exactly.
func fadd(a, b float32) float32 { return ff(alu(isa.OpFAdd, f(a), f(b), 0)) }
func fsub(a, b float32) float32 { return ff(alu(isa.OpFSub, f(a), f(b), 0)) }
func fmul(a, b float32) float32 { return ff(alu(isa.OpFMul, f(a), f(b), 0)) }
func fdiv(a, b float32) float32 { return ff(alu(isa.OpFDiv, f(a), f(b), 0)) }
func fmaf(a, b, c float32) float32 {
	return ff(alu(isa.OpFMA, f(a), f(b), f(c)))
}
func fsqrt(a float32) float32 { return ff(alu(isa.OpSqrt, f(a), 0, 0)) }
func fexp2(a float32) float32 { return ff(alu(isa.OpExp2, f(a), 0, 0)) }
func flog2(a float32) float32 { return ff(alu(isa.OpLog2, f(a), 0, 0)) }
func frcp(a float32) float32  { return ff(alu(isa.OpRcp, f(a), 0, 0)) }
func frsqrt(a float32) float32 {
	return ff(alu(isa.OpRsqrt, f(a), 0, 0))
}
func fsin(a float32) float32 { return ff(alu(isa.OpSin, f(a), 0, 0)) }
func fcos(a float32) float32 { return ff(alu(isa.OpCos, f(a), 0, 0)) }
func fmin32(a, b float32) float32 {
	return ff(alu(isa.OpFMin, f(a), f(b), 0))
}
func fmax32(a, b float32) float32 {
	return ff(alu(isa.OpFMax, f(a), f(b), 0))
}
func fabs32(a float32) float32 { return ff(alu(isa.OpFAbs, f(a), 0, 0)) }

// expectU32 checks one word of output.
func expectU32(mem []uint32, idx int, want uint32, what string) error {
	if mem[idx] != want {
		return fmt.Errorf("%s[%d] = %d (%#x), want %d (%#x)",
			what, idx, mem[idx], mem[idx], want, want)
	}
	return nil
}

// expectF32 checks one float word of output bit-exactly.
func expectF32(mem []uint32, idx int, want float32, what string) error {
	if got := ff(mem[idx]); got != want {
		return fmt.Errorf("%s[%d] = %v, want %v", what, idx, got, want)
	}
	return nil
}

// ftoi mirrors the simulator's float->int truncation.
func ftoi(v float32) uint32 { return alu(isa.OpFtoI, f(v), 0, 0) }
