package gpu

import (
	"fmt"
	"math/bits"

	"flame/internal/isa"
)

// MemFault describes an out-of-bounds or misaligned simulated access.
type MemFault struct {
	Space isa.Space
	Addr  uint32
	Op    string
}

// Error implements the error interface.
func (f *MemFault) Error() string {
	return fmt.Sprintf("gpu: %s fault: %s address %#x", f.Space, f.Op, f.Addr)
}

// Dirty-tracking page geometry. Global memory is divided into fixed
// 1 KiB pages; Store sets the owning page's bit in a compact bitmap so
// pooled trial engines can restore and diff only the pages a trial
// actually touched instead of the whole device footprint.
const (
	// PageWords is the dirty-tracking page size in 32-bit words (1 KiB).
	PageWords = 256
	pageShift = 8 // log2(PageWords)
	// PageBytes is the dirty-tracking page size in bytes.
	PageBytes = PageWords * 4
)

// GlobalMem is the device's flat global memory (word-addressed storage,
// byte-addressed accesses) with page-granular dirty tracking: every
// successful Store marks the written page in a bitmap, and the
// ResetDirty / RestoreFrom / DiffAgainst API lets callers pay O(touched
// pages) instead of O(footprint) for snapshot restore and golden diff.
// Writes through the Words() slice bypass tracking and are reserved for
// host-side setup before a snapshot is taken.
type GlobalMem struct {
	words []uint32
	dirty []uint64 // one bit per page; bit p set = page p written via Store
}

// NewGlobalMem allocates global memory of the given byte size with a
// clean dirty bitmap.
func NewGlobalMem(bytes int) *GlobalMem {
	words := make([]uint32, (bytes+3)/4)
	pages := (len(words) + PageWords - 1) / PageWords
	return &GlobalMem{words: words, dirty: make([]uint64, (pages+63)/64)}
}

// SizeBytes returns the memory size in bytes.
func (m *GlobalMem) SizeBytes() int { return len(m.words) * 4 }

// NumPages returns the number of dirty-tracking pages (the last one may
// be partial).
func (m *GlobalMem) NumPages() int { return (len(m.words) + PageWords - 1) / PageWords }

// Load reads the 32-bit word at a byte address.
func (m *GlobalMem) Load(addr uint32) (uint32, error) {
	i, err := m.index(addr, "load")
	if err != nil {
		return 0, err
	}
	return m.words[i], nil
}

// Store writes the 32-bit word at a byte address and marks its page
// dirty. A faulting (out-of-bounds or misaligned) store writes nothing
// and must leave the bitmap untouched: the fault aborts the launch, and
// a stale bit would make the next restore copy a page the trial never
// changed.
func (m *GlobalMem) Store(addr, v uint32) error {
	i, err := m.index(addr, "store")
	if err != nil {
		return err
	}
	m.words[i] = v
	p := i >> pageShift
	m.dirty[p>>6] |= 1 << uint(p&63)
	return nil
}

func (m *GlobalMem) index(addr uint32, op string) (int, error) {
	if addr%4 != 0 || int(addr/4) >= len(m.words) {
		return 0, &MemFault{Space: isa.SpaceGlobal, Addr: addr, Op: op}
	}
	return int(addr / 4), nil
}

// Words exposes the underlying storage for host-side setup/validation.
// Writes through it are NOT dirty-tracked; snapshot users must either
// write before the snapshot is taken or go through Store.
func (m *GlobalMem) Words() []uint32 { return m.words }

// DirtyPages exposes the raw dirty bitmap (bit p = page p). The slice
// is live and read-only for callers; it is invalidated by ResetDirty,
// RestoreFrom and MarkAllDirty.
func (m *GlobalMem) DirtyPages() []uint64 { return m.dirty }

// PageDirty reports whether page p has been written via Store since the
// last ResetDirty/RestoreFrom.
func (m *GlobalMem) PageDirty(p int) bool { return m.dirty[p>>6]&(1<<uint(p&63)) != 0 }

// DirtyPageCount returns the number of dirty pages.
func (m *GlobalMem) DirtyPageCount() int {
	n := 0
	for _, w := range m.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// ResetDirty clears the dirty bitmap without touching memory contents.
func (m *GlobalMem) ResetDirty() {
	for i := range m.dirty {
		m.dirty[i] = 0
	}
}

// MarkAllDirty sets every page dirty, forcing the next RestoreFrom to
// restore the full footprint (fresh devices start from zeroed memory,
// which is not any snapshot's content).
func (m *GlobalMem) MarkAllDirty() {
	pages := m.NumPages()
	for p := 0; p < pages; p++ {
		m.dirty[p>>6] |= 1 << uint(p&63)
	}
}

// RestoreFrom copies every dirty page back from the snapshot image and
// clears the bitmap, leaving memory bit-identical to init wherever it
// had diverged. It returns the number of pages restored. The image must
// have the memory's exact word length (it is the same device geometry
// the snapshot was taken from).
func (m *GlobalMem) RestoreFrom(init []uint32) int {
	if len(init) != len(m.words) {
		panic(fmt.Sprintf("gpu: RestoreFrom image has %d words, memory has %d", len(init), len(m.words)))
	}
	restored := 0
	for wi, bm := range m.dirty {
		if bm == 0 {
			continue
		}
		for bm != 0 {
			b := bits.TrailingZeros64(bm)
			bm &^= 1 << uint(b)
			p := wi*64 + b
			start := p * PageWords
			end := start + PageWords
			if end > len(m.words) {
				end = len(m.words)
			}
			copy(m.words[start:end], init[start:end])
			restored++
		}
		m.dirty[wi] = 0
	}
	return restored
}

// DiffAgainst compares memory with a reference image, but only over the
// candidate pages: pages currently dirty plus pages set in extra (the
// caller's precomputed "reference differs from the restore snapshot"
// bitmap; nil means none). Any page outside the candidate set is equal
// by construction when (a) memory was restored from a snapshot and only
// Store-tracked writes happened since, and (b) extra covers every page
// where ref differs from that snapshot. It returns the first diverging
// byte address (little-endian within a word, matching the simulator's
// byte addressing), the number of pages compared, and whether the
// candidate pages — and under (a)+(b), the whole image — are equal.
func (m *GlobalMem) DiffAgainst(ref []uint32, extra []uint64) (byteAddr int64, pages int, equal bool) {
	if len(ref) != len(m.words) {
		return -1, 0, false
	}
	for wi, bm := range m.dirty {
		if wi < len(extra) {
			bm |= extra[wi]
		}
		for bm != 0 {
			b := bits.TrailingZeros64(bm)
			bm &^= 1 << uint(b)
			p := wi*64 + b
			start := p * PageWords
			if start >= len(m.words) {
				continue
			}
			end := start + PageWords
			if end > len(m.words) {
				end = len(m.words)
			}
			pages++
			for i := start; i < end; i++ {
				if x := m.words[i] ^ ref[i]; x != 0 {
					return int64(i)*4 + int64(bits.TrailingZeros32(x)/8), pages, false
				}
			}
		}
	}
	return -1, pages, true
}

// cacheModel is a tag-only set-associative LRU cache used for timing.
type cacheModel struct {
	sets, ways int
	lineBytes  uint32
	tags       [][]uint64 // [set][way]; 0 = invalid
	tick       [][]int64  // LRU timestamps
	now        int64
}

func newCache(sets, ways, lineBytes int) *cacheModel {
	c := &cacheModel{sets: sets, ways: ways, lineBytes: uint32(lineBytes)}
	c.tags = make([][]uint64, sets)
	c.tick = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.tick[i] = make([]int64, ways)
	}
	return c
}

// access probes the line containing addr, filling it on miss.
// It reports whether the access hit.
func (c *cacheModel) access(addr uint32) bool {
	line := uint64(addr / c.lineBytes)
	set := int(line) % c.sets
	tag := line + 1 // +1 so 0 stays "invalid"
	c.now++
	lru, lruAt := 0, c.tick[set][0]
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.tick[set][w] = c.now
			return true
		}
		if c.tick[set][w] < lruAt {
			lru, lruAt = w, c.tick[set][w]
		}
	}
	c.tags[set][lru] = tag
	c.tick[set][lru] = c.now
	return false
}

// reset invalidates every line.
func (c *cacheModel) reset() {
	for s := range c.tags {
		for w := range c.tags[s] {
			c.tags[s][w] = 0
			c.tick[s][w] = 0
		}
	}
}
