package flame

import (
	"sort"

	"flame/internal/gpu"
	"flame/internal/isa"
	"flame/internal/regions"
)

// Mode configures the resilience behaviour the controller enforces.
type Mode struct {
	// WCDL is the sensors' worst-case detection latency in cycles (the
	// RBQ conveyor depth).
	WCDL int
	// UseRBQ enables WCDL-aware warp scheduling: a warp hitting a region
	// boundary is descheduled into the RBQ for WCDL cycles (sensor-based
	// detection schemes). When false, region boundaries advance the RPT
	// immediately (duplication/hybrid detection: errors are caught within
	// the region).
	UseRBQ bool
	// Sections are the extended regions produced by the III-E
	// optimization; they are verified collectively per thread block.
	Sections []regions.Section
	// CkptSlots is non-nil under the checkpointing recovery scheme: the
	// local-memory slot of each checkpointed register. Recovery restores
	// committed checkpoint values.
	CkptSlots map[isa.Reg]int32
	// EagerSectionVerify disables the mid-section verification skip
	// (ablation): boundaries strictly inside extended sections then wait
	// in the RBQ even though they cannot advance the recovery PC.
	EagerSectionVerify bool
}

// Stats counts controller events.
type Stats struct {
	// Enqueues / Pops count RBQ traffic; Flushed counts entries discarded
	// by recoveries.
	Enqueues, Pops, Flushed int64
	// MaxRBQ is the maximum conveyor occupancy observed.
	MaxRBQ int
	// CollectiveApplies counts section verifications applied block-wide.
	CollectiveApplies int64
	// Recoveries counts error recoveries performed.
	Recoveries int64
	// UndoneAtomics counts atomic operations reverted during recovery.
	UndoneAtomics int64
	// RestoredRegs counts checkpoint-restored register values.
	RestoredRegs int64
}

type ckKey struct {
	lane int
	reg  isa.Reg
}

type undoEntry struct {
	w      *gpu.Warp
	space  isa.Space
	shared []uint32 // backing array for shared-space undo
	mem    *gpu.GlobalMem
	addr   uint32
	old    uint32
}

// Controller implements the Flame hardware: RPT + RBQ + recovery. Attach
// it to a device run via Hooks().
type Controller struct {
	Mode  Mode
	Stats Stats

	// Inj, when set, injects a fault and drives detection.
	Inj *Injector

	// FalsePositives lists cycles at which the sensors spuriously report
	// a strike (mis-calibration, Section IV): a full recovery runs with
	// no actual corruption. Must be sorted ascending.
	FalsePositives []int64
	nextFP         int

	// rbqs holds one verification conveyor per (SM, warp scheduler), as
	// in the paper's hardware (Section III-D2), indexed
	// smID*SchedulersPerSM+sched and grown on first use (a flat slice:
	// onCycle and onAdvance walk every conveyor every cycle, and map
	// probes there were a measurable share of campaign time).
	rbqs    []*RBQ
	rpt     map[*gpu.Warp]Snapshot
	cleared map[*gpu.Warp]int

	pendCkpt map[*gpu.Warp]map[ckKey]uint32
	commCkpt map[*gpu.Warp]map[ckKey]uint32

	undo []undoEntry

	// sectionPending[block][warp] holds verified-but-unapplied snapshots
	// of section-completing boundaries awaiting the whole block.
	sectionPending map[*gpu.BlockState]map[*gpu.Warp]Snapshot
}

// NewController creates a controller for one device run.
func NewController(mode Mode) *Controller {
	if mode.WCDL < 1 {
		mode.WCDL = 1
	}
	return &Controller{
		Mode:           mode,
		rpt:            map[*gpu.Warp]Snapshot{},
		cleared:        map[*gpu.Warp]int{},
		pendCkpt:       map[*gpu.Warp]map[ckKey]uint32{},
		commCkpt:       map[*gpu.Warp]map[ckKey]uint32{},
		sectionPending: map[*gpu.BlockState]map[*gpu.Warp]Snapshot{},
	}
}

// Hooks returns the simulator hooks realizing this controller.
func (c *Controller) Hooks() *gpu.Hooks {
	return &gpu.Hooks{
		BeforeIssue:    c.beforeIssue,
		OnExecuted:     c.onExecuted,
		OnAtomic:       c.onAtomic,
		OnCycle:        c.onCycle,
		OnAdvance:      c.onAdvance,
		OnBlockDone:    c.onBlockDone,
		OnWarpDispatch: c.onWarpDispatch,
	}
}

// onAdvance bounds event-driven fast-forwarding: while every scheduler
// is stalled this controller's onCycle only acts at discrete pending
// events — a sensor detection coming due, a scheduled false positive, or
// an RBQ entry reaching its pop cycle (which may in turn complete a
// collective section, in the same onCycle). New strikes, enqueues and
// section completions all require an executed instruction, which cannot
// happen inside the skipped span, so the earliest of those pending
// events is an exact bound. This is a pure query; it mutates nothing.
func (c *Controller) onAdvance(d *gpu.Device, from, to int64) int64 {
	t := to
	if c.Inj != nil {
		if due := c.Inj.NextDetection(); due >= 0 && due < t {
			t = due
		}
	}
	if c.nextFP < len(c.FalsePositives) && c.FalsePositives[c.nextFP] < t {
		t = c.FalsePositives[c.nextFP]
	}
	for _, q := range c.rbqs {
		if q != nil && q.Len() > 0 {
			if r := q.NextReady(); r < t {
				t = r
			}
		}
	}
	if t < from {
		t = from
	}
	return t
}

// onWarpDispatch seeds the warp's recovery point with its launch state,
// so the per-issue path never has to probe for a missing RPT entry.
func (c *Controller) onWarpDispatch(d *gpu.Device, sm *gpu.SM, w *gpu.Warp) {
	c.rpt[w] = snapshotOf(w)
}

func (c *Controller) rbqOf(d *gpu.Device, sm *gpu.SM, w *gpu.Warp) *RBQ {
	idx := sm.ID*d.Cfg.SchedulersPerSM + w.ID%d.Cfg.SchedulersPerSM
	for idx >= len(c.rbqs) {
		c.rbqs = append(c.rbqs, nil)
	}
	if c.rbqs[idx] == nil {
		c.rbqs[idx] = &RBQ{Depth: c.Mode.WCDL}
	}
	return c.rbqs[idx]
}

// boundaryAt reports whether issuing pc crosses a region boundary that
// needs verification: an annotated boundary or a thread exit (the final
// region is verified before the warp may retire).
func boundaryAt(prog *isa.Program, pc int) bool {
	in := &prog.Insts[pc]
	return in.Boundary || in.Op == isa.OpExit
}

func (c *Controller) beforeIssue(d *gpu.Device, sm *gpu.SM, w *gpu.Warp) bool {
	pc := w.PC()
	if !boundaryAt(d.Kernel(), pc) {
		return true
	}
	if !c.Mode.EagerSectionVerify && c.midSection(pc) {
		// A boundary strictly inside an extended section cannot advance
		// the recovery PC (the section is verified collectively at its
		// end), so waiting for its verification buys nothing: any error
		// before the section-end verification rolls the whole block back
		// to its pre-section recovery points. Skip the conveyor.
		return true
	}
	if cl, ok := c.cleared[w]; ok && cl == pc {
		// This crossing was verified; consume the clearance and proceed.
		delete(c.cleared, w)
		return true
	}
	snap := snapshotOf(w)
	if !c.Mode.UseRBQ {
		// Immediate-detection schemes: the finished region is known
		// error-free at its end; advance the RPT without any delay.
		c.advanceRPT(w, snap)
		c.cleared[w] = pc
		return true
	}
	q := c.rbqOf(d, sm, w)
	if !q.CanPush(d.Cyc) {
		// The conveyor accepts one warp per cycle and holds at most WCDL
		// entries; the warp retries next cycle (a structural stall).
		return false
	}
	q.Push(w, snap, d.Cyc)
	if q.Len() > c.Stats.MaxRBQ {
		c.Stats.MaxRBQ = q.Len()
	}
	c.Stats.Enqueues++
	w.Suspended = true
	return false
}

// advanceRPT commits a verified boundary: the snapshot becomes the
// warp's recovery point, pending checkpoints commit, and the warp's
// atomic undo entries are dropped.
func (c *Controller) advanceRPT(w *gpu.Warp, snap Snapshot) {
	c.rpt[w] = snap
	if p := c.pendCkpt[w]; len(p) > 0 {
		com, ok := c.commCkpt[w]
		if !ok {
			com = map[ckKey]uint32{}
			c.commCkpt[w] = com
		}
		for k, v := range p {
			com[k] = v
		}
		delete(c.pendCkpt, w)
	}
	if len(c.undo) > 0 {
		kept := c.undo[:0]
		for _, e := range c.undo {
			if e.w != w {
				kept = append(kept, e)
			}
		}
		c.undo = kept
	}
}

// sectionCrossed returns the instruction span of a section completed by
// verifying the region [rptPC, snapPC), or ok=false.
func (c *Controller) sectionCrossed(rptPC, snapPC int) (regions.Section, bool) {
	for _, s := range c.Mode.Sections {
		if rptPC < s.End && snapPC >= s.End {
			return s, true
		}
	}
	return regions.Section{}, false
}

// midSection reports whether pc lies strictly inside a section.
func (c *Controller) midSection(pc int) bool {
	for _, s := range c.Mode.Sections {
		if pc > s.Start && pc < s.End {
			return true
		}
	}
	return false
}

func (c *Controller) onCycle(d *gpu.Device) {
	// Detection first: an error detected this cycle invalidates pops that
	// would otherwise complete this cycle.
	if c.Inj != nil && c.Inj.DetectionDue(d.Cyc) {
		c.Recover(d)
	}
	for c.nextFP < len(c.FalsePositives) && d.Cyc >= c.FalsePositives[c.nextFP] {
		c.Recover(d)
		c.nextFP++
	}
	// Conveyor order matches (SM, scheduler) index order by construction
	// of rbqOf's flat indexing.
	nsched := d.Cfg.SchedulersPerSM
	for idx, q := range c.rbqs {
		if q != nil {
			c.popOne(d, d.SMs[idx/nsched], q)
		}
	}
	c.applyCompleteSections(d)
}

// popOne dequeues at most one verified entry from a conveyor.
func (c *Controller) popOne(d *gpu.Device, sm *gpu.SM, q *RBQ) {
	e, ok := q.Pop(d.Cyc)
	if !ok {
		return
	}
	c.Stats.Pops++
	w := e.w
	if w.Finished {
		return
	}
	if _, collective := c.sectionCrossed(c.rpt[w].PC, e.snap.PC); collective {
		// The verified region completes an extended section: hold the
		// warp until every live warp of its block completes it too.
		b := sm.BlockOf(w)
		pend, ok := c.sectionPending[b]
		if !ok {
			pend = map[*gpu.Warp]Snapshot{}
			c.sectionPending[b] = pend
		}
		pend[w] = e.snap
		return // warp stays suspended
	}
	if c.midSection(e.snap.PC) {
		// Possible only under EagerSectionVerify: the wait elapsed, but
		// the recovery PC must not move inside a collectively recovered
		// section.
		c.cleared[w] = e.snap.PC
		w.Suspended = false
		return
	}
	c.advanceRPT(w, e.snap)
	c.cleared[w] = e.snap.PC
	w.Suspended = false
}

// applyCompleteSections releases blocks whose live warps all verified an
// extended section.
func (c *Controller) applyCompleteSections(d *gpu.Device) {
	if len(c.sectionPending) == 0 {
		return
	}
	for _, sm := range d.SMs {
		for _, b := range sm.Blocks {
			pend, ok := c.sectionPending[b]
			if !ok || b.GlobalID < 0 {
				continue
			}
			live := sm.WarpsOfBlock(b)
			alive := 0
			complete := true
			for _, w := range live {
				if w.Finished {
					continue
				}
				alive++
				if _, ok := pend[w]; !ok {
					complete = false
				}
			}
			if alive == 0 || !complete {
				continue
			}
			for w, snap := range pend {
				if w.Finished {
					continue
				}
				c.advanceRPT(w, snap)
				c.cleared[w] = snap.PC
				w.Suspended = false
			}
			delete(c.sectionPending, b)
			c.Stats.CollectiveApplies++
		}
	}
}

func (c *Controller) onExecuted(d *gpu.Device, sm *gpu.SM, w *gpu.Warp, pc int) {
	in := &d.Kernel().Insts[pc]
	if c.Mode.CkptSlots != nil && in.Origin == isa.OrigCheckpoint {
		// Record the checkpointed value per lane; it commits into the
		// restore set when the containing region verifies.
		reg := in.Src[1].Reg
		p, ok := c.pendCkpt[w]
		if !ok {
			p = map[ckKey]uint32{}
			c.pendCkpt[w] = p
		}
		mask := w.ActiveMask()
		for lane := 0; lane < len(w.Regs); lane++ {
			if mask&(1<<lane) == 0 || w.Regs[lane] == nil {
				continue
			}
			p[ckKey{lane, reg}] = w.Regs[lane][reg]
		}
	}
	if c.Inj != nil {
		c.Inj.Observe(d, sm, w, pc)
	}
	if w.Finished {
		c.forgetWarp(w)
	}
}

func (c *Controller) onAtomic(d *gpu.Device, sm *gpu.SM, w *gpu.Warp, space isa.Space, addr, old uint32, lane int) {
	e := undoEntry{w: w, space: space, addr: addr, old: old}
	if space == isa.SpaceShared {
		e.shared = sm.BlockOf(w).Shared
	} else {
		e.mem = d.Mem
	}
	c.undo = append(c.undo, e)
}

func (c *Controller) onBlockDone(d *gpu.Device, sm *gpu.SM, gb int) {
	for b := range c.sectionPending {
		if b.GlobalID < 0 {
			delete(c.sectionPending, b)
		}
	}
}

// forgetWarp drops all per-warp state once a warp retires (its final
// region was verified before the exit issued).
func (c *Controller) forgetWarp(w *gpu.Warp) {
	delete(c.rpt, w)
	delete(c.cleared, w)
	delete(c.pendCkpt, w)
	delete(c.commCkpt, w)
}

// Recover performs full error recovery: flush the RBQ, revert unverified
// atomics, restore checkpointed inputs (checkpointing scheme), and reset
// every live warp to its recovery snapshot (Section III-D1).
func (c *Controller) Recover(d *gpu.Device) {
	c.Stats.Recoveries++
	for _, q := range c.rbqs {
		if q != nil {
			c.Stats.Flushed += int64(len(q.Flush()))
		}
	}
	// Revert unverified atomics, newest first.
	for i := len(c.undo) - 1; i >= 0; i-- {
		e := c.undo[i]
		if e.space == isa.SpaceShared {
			e.shared[e.addr/4] = e.old
		} else {
			_ = e.mem.Store(e.addr, e.old)
		}
		c.Stats.UndoneAtomics++
	}
	c.undo = c.undo[:0]

	for _, sm := range d.SMs {
		for _, w := range sm.Warps {
			if w == nil || w.Finished {
				continue
			}
			snap, ok := c.rpt[w]
			if !ok {
				snap = snapshotOf(w)
			}
			w.Restore(snap.PC, snap.Stack, snap.BarGen, d.Cyc)
			c.cleared[w] = snap.PC
			delete(c.pendCkpt, w)
			if com := c.commCkpt[w]; com != nil {
				// Restore region inputs from committed checkpoints,
				// deterministically ordered for reproducibility.
				keys := make([]ckKey, 0, len(com))
				for k := range com {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool {
					if keys[i].lane != keys[j].lane {
						return keys[i].lane < keys[j].lane
					}
					return keys[i].reg < keys[j].reg
				})
				for _, k := range keys {
					if w.Regs[k.lane] != nil {
						w.Regs[k.lane][k.reg] = com[k]
						c.Stats.RestoredRegs++
					}
				}
			}
		}
		// Re-synchronize replayed barriers.
		for _, b := range sm.Blocks {
			if b.GlobalID >= 0 {
				sm.ResetBarrierGen(b)
			}
		}
	}
	for b := range c.sectionPending {
		delete(c.sectionPending, b)
	}
}

// Accumulate adds another controller's counters into s (multi-kernel
// applications sum their launches).
func (s *Stats) Accumulate(o *Stats) {
	s.Enqueues += o.Enqueues
	s.Pops += o.Pops
	s.Flushed += o.Flushed
	if o.MaxRBQ > s.MaxRBQ {
		s.MaxRBQ = o.MaxRBQ
	}
	s.CollectiveApplies += o.CollectiveApplies
	s.Recoveries += o.Recoveries
	s.UndoneAtomics += o.UndoneAtomics
	s.RestoredRegs += o.RestoredRegs
}
