package gpu

import (
	"testing"

	"flame/internal/isa"
)

// runForStats runs a launch on a fresh device and returns its stats and
// final memory, with event-driven cycle skipping on or off.
func runForStats(t *testing.T, noSkip bool, prog *isa.Program, grid, block isa.Dim3,
	params []uint32, setup func([]uint32), hooks *Hooks) (Stats, []uint32) {
	t.Helper()
	cfg := smallConfig()
	cfg.NoCycleSkip = noSkip
	d, err := NewDevice(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(d.Mem.Words())
	}
	l := &Launch{Prog: prog, Grid: grid, Block: block, Params: params}
	st, err := d.Run(l, hooks)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]uint32, len(d.Mem.Words()))
	copy(mem, d.Mem.Words())
	return *st, mem
}

// TestCycleSkipEquivalence asserts the tentpole invariant: fast-forwarding
// fully-stalled spans yields bit-identical statistics — not just Cycles,
// but every counter the naive loop books per stalled cycle — and
// identical memory, across compute-bound, memory-bound, barrier-heavy
// and divergent kernels.
func TestCycleSkipEquivalence(t *testing.T) {
	const memBound = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    shl r4, r3, 2
	    ld.param r5, [0]
	    add r6, r5, r4
	    ld.global r7, [r6]
	    ld.param r8, [4]
	    add r9, r8, r4
	    ld.global r10, [r9]
	    add r11, r7, r10
	    st.global [r9], r11
	    exit
	`
	const barriered = `
	    .shared 256
	    mov r0, %tid.x
	    shl r1, r0, 2
	    st.shared [r1], r0
	    bar.sync
	    xor r2, r0, 1
	    shl r3, r2, 2
	    ld.shared r4, [r3]
	    bar.sync
	    mov r5, %ctaid.x
	    mov r6, %ntid.x
	    mad r7, r5, r6, r0
	    shl r8, r7, 2
	    ld.param r9, [0]
	    add r10, r9, r8
	    st.global [r10], r4
	    exit
	`
	const divergent = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    and r4, r3, 3
	    mov r5, 0
	    setp.lt p0, r4, 2
	@p0 bra THEN
	    mul r5, r3, 3
	    bra DONE
	THEN:
	    mul r5, r3, 7
	DONE:
	    shl r6, r3, 2
	    ld.param r7, [0]
	    add r8, r7, r6
	    ld.global r9, [r8]
	    add r10, r9, r5
	    st.global [r8], r10
	    exit
	`
	cases := []struct {
		name  string
		src   string
		grid  isa.Dim3
		block isa.Dim3
	}{
		{"mem-bound", memBound, isa.Dim3{X: 16}, isa.Dim3{X: 128}},
		{"barrier", barriered, isa.Dim3{X: 8}, isa.Dim3{X: 64}},
		{"divergent", divergent, isa.Dim3{X: 8}, isa.Dim3{X: 96}},
	}
	setup := func(mem []uint32) {
		for i := 0; i < 4096; i++ {
			mem[i] = uint32(i * 2654435761)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := isa.MustParse(tc.name, tc.src)
			params := []uint32{0, 16384}
			naive, memN := runForStats(t, true, prog, tc.grid, tc.block, params, setup, nil)
			fast, memF := runForStats(t, false, prog, tc.grid, tc.block, params, setup, nil)
			if naive != fast {
				t.Errorf("stats diverge:\n naive: %+v\n  fast: %+v", naive, fast)
			}
			for i := range memN {
				if memN[i] != memF[i] {
					t.Fatalf("memory diverges at word %d: %#x != %#x", i, memN[i], memF[i])
				}
			}
			if naive.StallCycles == 0 {
				t.Errorf("%s never stalled; equivalence not exercised", tc.name)
			}
		})
	}
}

// TestCycleSkipSchedulers runs the memory-bound kernel under every
// scheduling policy: the skip decision consults only warp readiness, so
// policy state (greedy warp, two-level active set) must survive spans
// untouched and produce identical picks on resume.
func TestCycleSkipSchedulers(t *testing.T) {
	prog := isa.MustParse("vadd", vaddSrc)
	setup := func(mem []uint32) {
		for i := 0; i < 256; i++ {
			mem[i], mem[256+i] = uint32(i), uint32(3*i)
		}
	}
	for _, sched := range []SchedulerKind{GTO, LRR, OLD, TwoLevel} {
		t.Run(sched.String(), func(t *testing.T) {
			run := func(noSkip bool) Stats {
				cfg := smallConfig()
				cfg.Scheduler = sched
				cfg.NoCycleSkip = noSkip
				d, err := NewDevice(cfg, 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				setup(d.Mem.Words())
				l := &Launch{Prog: prog, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64},
					Params: []uint32{0, 4 * 256, 8 * 256}}
				st, err := d.Run(l, hooksForSkipTest())
				if err != nil {
					t.Fatal(err)
				}
				return *st
			}
			naive, fast := run(true), run(false)
			if naive != fast {
				t.Errorf("stats diverge:\n naive: %+v\n  fast: %+v", naive, fast)
			}
		})
	}
}

// hooksForSkipTest returns a hook set with an OnAdvance-aware OnCycle
// consumer that records how often it runs, exercising the bound-query
// path (a consumer that only cares about every 500th cycle).
func hooksForSkipTest() *Hooks {
	return &Hooks{
		OnCycle: func(d *Device) {},
		OnAdvance: func(d *Device, from, to int64) int64 {
			next := (from/500 + 1) * 500
			if next < to {
				return next
			}
			return to
		},
	}
}

// TestCycleSkipBudgetError asserts the cycle-limit path is identical: a
// deadlocked launch (its only warp durably suspended by a hook, as
// WCDL-aware scheduling does) exhausts its budget at the same cycle with
// the same stall accounting, whether stepped or skipped — the skip path
// jumps straight to the budget and errors there.
func TestCycleSkipBudgetError(t *testing.T) {
	const src = `
	    mov r0, %tid.x
	    exit
	`
	prog := isa.MustParse("parked", src)
	var stats [2]Stats
	for i, noSkip := range []bool{true, false} {
		cfg := smallConfig()
		cfg.NoCycleSkip = noSkip
		d, err := NewDevice(cfg, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		// Suspend the warp durably (never resumed): a deadlock both loops
		// must diagnose at exactly MaxCycles.
		hooks := &Hooks{
			BeforeIssue: func(d *Device, sm *SM, w *Warp) bool {
				w.Suspended = true
				return false
			},
		}
		l := &Launch{Prog: prog, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32},
			MaxCycles: 10_000}
		_, err = d.Run(l, hooks)
		if err == nil {
			t.Fatal("expected cycle-limit error")
		}
		if d.Cyc != 10_000 {
			t.Errorf("noSkip=%v: stopped at cycle %d, want 10000", noSkip, d.Cyc)
		}
		stats[i] = d.Stats
	}
	if stats[0] != stats[1] {
		t.Errorf("stall accounting diverges at the budget:\n naive: %+v\n  fast: %+v",
			stats[0], stats[1])
	}
}
