#!/usr/bin/env bash
# Chaos smoke test for the distributed campaign service.
#
# Proves the fault-tolerance contract end to end with real processes:
#   1. Run the reference campaign single-process (flameinject) -> report A.
#   2. Run the same campaign distributed: flameserve + 4 flameworkers.
#      Mid-campaign, kill -9 one worker (its lease must expire and its
#      shard be re-leased), then kill -9 the coordinator itself and
#      restart it on the same state dir (it must resume from checkpoint
#      + shard streams while the surviving workers reconnect).
#   3. Assert the merged distributed report is byte-identical to A.
#
# Artifacts (state dir, logs, reports) land in $OUT (default: a temp dir).
set -u -o pipefail

BENCHES="${BENCHES:-Triad,Histogram,BFS}"
TRIALS="${TRIALS:-12}"
SEED="${SEED:-7}"
ADDR="${ADDR:-127.0.0.1:18077}"
URL="http://$ADDR"
OUT="${OUT:-$(mktemp -d)}"
STATE="$OUT/state"
mkdir -p "$OUT"

log() { echo "chaos_smoke: $*" >&2; }
die() { log "FAIL: $*"; exit 1; }

cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null
    wait 2>/dev/null
}
trap cleanup EXIT

log "building binaries"
go build -o "$OUT/flameinject" ./cmd/flameinject || die "build flameinject"
go build -o "$OUT/flameserve" ./cmd/flameserve || die "build flameserve"
go build -o "$OUT/flameworker" ./cmd/flameworker || die "build flameworker"

log "reference single-process campaign"
"$OUT/flameinject" -bench "$BENCHES" -trials "$TRIALS" -seed "$SEED" \
    -json "$OUT/single.json" >"$OUT/single.txt" 2>"$OUT/single.log"
rc=$?
[ $rc -eq 0 ] || [ $rc -eq 2 ] || die "flameinject exited $rc"
[ -s "$OUT/single.json" ] || die "no single-process report"

start_coordinator() {
    "$OUT/flameserve" -addr "$ADDR" -state "$STATE" \
        -bench "$BENCHES" -trials "$TRIALS" -seed "$SEED" \
        -shard-size 2 -lease-ttl 3s \
        -json "$OUT/dist.json" >"$OUT/dist.txt" 2>>"$OUT/serve.log" &
    SERVE_PID=$!
}

start_worker() { # $1 = name
    "$OUT/flameworker" -url "$URL" -name "$1" -flush 1 2>>"$OUT/worker-$1.log" &
    eval "WPID_$1=$!"
}

log "starting coordinator + 4 workers"
start_coordinator
for w in w1 w2 w3 w4; do start_worker "$w"; done

# Wait until some trials have been streamed, then murder worker w1.
for i in $(seq 1 100); do
    done_trials=$(curl -fsS "$URL/v1/status" 2>/dev/null \
        | sed -n 's/.*"done_trials":\([0-9]*\).*/\1/p')
    [ -n "${done_trials:-}" ] && [ "$done_trials" -ge 1 ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || die "coordinator died early (see serve.log)"
    sleep 0.2
done
[ "${done_trials:-0}" -ge 1 ] || die "no trials streamed after 20s"

log "kill -9 worker w1 mid-campaign ($done_trials trials streamed so far)"
kill -9 "$WPID_w1" 2>/dev/null

# The murdered worker's lease must expire and its shard be re-leased
# to a survivor before we also kill the coordinator.
for i in $(seq 1 100); do
    grep -q "expired" "$OUT/serve.log" && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.2
done
grep -q "expired" "$OUT/serve.log" || die "no lease expiry recorded — w1's death went unnoticed"

log "kill -9 the coordinator and restart it from its state dir"
kill -9 "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null
sleep 1
start_coordinator

# The surviving workers retry through the outage and finish the campaign.
wait "$SERVE_PID"
rc=$?
[ $rc -eq 0 ] || [ $rc -eq 2 ] || die "restarted coordinator exited $rc (see serve.log)"
[ -s "$OUT/dist.json" ] || die "no distributed report"
grep -q "resume" "$OUT/serve.log" || die "restarted coordinator did not resume from state dir"

if cmp -s "$OUT/single.json" "$OUT/dist.json"; then
    log "PASS: distributed report is byte-identical to the single-process report"
else
    diff "$OUT/single.json" "$OUT/dist.json" >&2
    die "distributed report differs from single-process report"
fi

# The surviving workers must drain cleanly (exit 0) once told Done.
for w in w2 w3 w4; do
    eval 'pid=$WPID_'"$w"
    wait "$pid"
    wrc=$?
    [ $wrc -eq 0 ] || die "worker $w exited $wrc (see worker-$w.log)"
done

# The re-lease after w1's murder must be visible in the coordinator log.
grep -q "expired" "$OUT/serve.log" || die "no lease expiry recorded — w1's death went unnoticed"
log "artifacts in $OUT"
log "OK"
