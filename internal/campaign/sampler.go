package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"flame/internal/core"
	"flame/internal/flame"
	"flame/internal/obs"
	"flame/internal/stats"
)

// Stratified sampler: instead of drawing every trial's arm cycle
// uniformly from the whole window, the site space is enumerated once
// per benchmark into (kernel, section, opcode-class) strata — split
// further by static liveness class under Config.StrataKey "liveness" —
// with exact site counts (core.BuildStrataKeyed), and trials are drawn
// uniformly WITHIN
// strata in rounds — a uniform pilot round first, then Neyman
// (variance-proportional) reallocation by the per-stratum outcome
// variance observed so far. Between rounds the post-stratified SDC and
// DUE rate CIs are checked against Config.CITarget, stopping the
// benchmark as soon as both are tight enough.
//
// Two properties keep accelerated campaigns honest:
//
//   - Determinism: each stratum owns a seed stream derived from the
//     campaign seed tree (benchSeed ^ "stratum:<key>"), trial i of a
//     stratum is the same trial at any -parallel, rounds are barriers,
//     and results fold in dispatch order — the report is byte-identical
//     regardless of worker count.
//   - Auditability: Audit runs the same budget on the uniform exact
//     grid and checks the stratified estimates fall inside the grid's
//     Wilson CIs (the estimators agree on what they estimate: rates
//     conditional on injection, since the no-injection tail is excluded
//     analytically and uniform rates divide by Injected).

// sjob is one stratified trial handed to a worker.
type sjob struct {
	spec    *core.KernelSpec
	g       *core.Golden
	px      *core.PruneIndex
	ts      core.TrialSpec
	bench   string
	trial   int // per-benchmark global trial index, dispatch order
	stratum string
	slot    *core.TrialResult
	ran     *bool
	wg      *sync.WaitGroup
}

// stratumState is one stratum's sampling progress within a benchmark.
type stratumState struct {
	st    *flame.SiteStratum
	seed  uint64        // root of the stratum's trial seed stream
	drawn int           // trials drawn so far (next seed index)
	rep   StratumReport // outcome tallies
}

// stratumSeed derives a stratum's seed-stream root from the campaign
// seed tree. The "stratum:" tag keeps the stream disjoint from the
// uniform grid's per-trial streams for the same benchmark.
func stratumSeed(campaignSeed uint64, bench, key string) uint64 {
	return splitmix64(benchSeed(campaignSeed, bench) ^ fnv64("stratum:"+key))
}

// stratumTrialSpec derives trial i of a stratum: a uniform site draw
// within the stratum mapped to its exact arm cycle, plus the injector
// seed. Depends only on (campaign seed, benchmark, stratum key, i), so
// the trial is the same no matter which worker runs it.
func (cfg *Config) stratumTrialSpec(g *core.Golden, ss *stratumState, i int) core.TrialSpec {
	rng := rand.New(rand.NewSource(trialSeed(ss.seed, i)))
	site := rng.Int63n(ss.st.Sites)
	return core.TrialSpec{
		Arms:      []int64{ss.st.ArmAt(site)},
		Model:     cfg.Model,
		Seed:      rng.Int63(),
		MaxCycles: g.HangBudget(cfg.HangBudgetMult),
		Timeout:   cfg.TrialTimeout,
	}
}

// RunStratified executes the stratified-sampling campaign. Config.Trials
// is the per-benchmark budget; benchmarks stop early once both rate CIs
// reach Config.CITarget (when positive). Single-strike only.
func RunStratified(cfg Config) (*Report, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("campaign: no workloads")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("campaign: trials must be positive")
	}
	if cfg.StrikesPerTrial > 1 {
		return nil, fmt.Errorf("campaign: stratified sampling is single-strike (strikes=%d)", cfg.StrikesPerTrial)
	}
	if cfg.Skip != nil {
		return nil, fmt.Errorf("campaign: stratified sampling does not support trial skipping (-resume)")
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	var str *streamer
	if cfg.Events != nil {
		str = newStreamer(cfg.Events, len(cfg.Specs)*cfg.Trials)
	}

	strataKey, err := core.ParseStrataKey(cfg.StrataKey)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}

	goldens := make([]*core.Golden, len(cfg.Specs))
	strata := make([]*flame.StrataMap, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		g, err := core.GoldenRun(cfg.Arch, spec, cfg.Opt)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", spec.Name, err)
		}
		goldens[i] = g
		if strata[i], err = core.BuildStrataKeyed(cfg.Arch, spec, g, cfg.Model, strataKey); err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", spec.Name, err)
		}
	}
	if str != nil {
		str.campaignStart(&cfg, parallel, goldens[0].Comp.Opt.WCDL)
		for i, spec := range cfg.Specs {
			str.golden(spec.Name, goldens[i].Window)
		}
		for i, spec := range cfg.Specs {
			m := strata[i]
			info := make([]stratumInfo, len(m.Strata))
			for j := range m.Strata {
				info[j] = stratumInfo{Key: m.Strata[j].Key(), Sites: m.Strata[j].Sites}
			}
			str.strata(spec.Name, m.Span, m.NoInjectionSites, info)
		}
	}

	pruneIdx := make([]*core.PruneIndex, len(cfg.Specs))
	pruneOff := make([]string, len(cfg.Specs))
	if cfg.Prune {
		for i, spec := range cfg.Specs {
			pruneIdx[i] = core.BuildPruneIndex(cfg.Arch, spec, goldens[i], 0)
			if reason := pruneIdx[i].Disabled(); reason != "" {
				pruneOff[i] = reason
				if str != nil {
					str.pruneDisabled(spec.Name, reason)
				}
			}
		}
	}

	jobs := make(chan sjob, parallel)
	var wwg sync.WaitGroup
	engines := make([]*core.Engine, parallel)
	for w := 0; w < parallel; w++ {
		wwg.Add(1)
		eng := core.NewEngine(cfg.Arch)
		eng.SetNoCOW(cfg.NoCOW)
		engines[w] = eng
		// One tracer per worker, reset per trial (see Run).
		var obsv core.TrialObserver
		if cfg.Trace {
			obsv = obs.NewTracer()
		}
		go func() {
			defer wwg.Done()
			for j := range jobs {
				if str != nil {
					str.trialStart(j.bench, j.trial)
				}
				j.ts.Observer = obsv
				res, pruned := j.px.PruneTrial(j.g, j.ts)
				if pruned {
					res.Pruned = true
				} else {
					res = eng.RunTrial(j.spec, j.g, j.ts)
				}
				res.Stratum = j.stratum
				*j.slot = *res
				*j.ran = true
				if str != nil {
					str.trial(j.bench, j.trial, res)
				}
				j.wg.Done()
			}
		}()
	}

	stopped := func() bool {
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}

	rep := &Report{
		Arch:            cfg.Arch.Name,
		Scheme:          cfg.Opt.Scheme.String(),
		Model:           cfg.Model.String(),
		WCDL:            goldens[0].Comp.Opt.WCDL,
		Seed:            cfg.Seed,
		Trials:          cfg.Trials,
		StrikesPerTrial: 1,
		Stratified:      true,
		CITarget:        cfg.CITarget,
	}
	wasStopped := false
	for b, spec := range cfg.Specs {
		if stopped() {
			wasStopped = true
			break
		}
		g, m := goldens[b], strata[b]
		br := BenchReport{Benchmark: spec.Name, WindowCycles: g.Window, PruneDisabled: pruneOff[b]}
		states := make([]*stratumState, len(m.Strata))
		for h := range m.Strata {
			st := &m.Strata[h]
			states[h] = &stratumState{
				st:   st,
				seed: stratumSeed(cfg.Seed, spec.Name, st.Key()),
				rep:  StratumReport{Key: st.Key(), Sites: st.Sites},
			}
		}

		used, rounds := 0, 0
		reason := "budget"
		if len(states) == 0 {
			reason = "no_sites"
		}
		for len(states) > 0 {
			if used >= cfg.Trials {
				reason = "budget"
				break
			}
			if stopped() {
				reason = "stopped"
				wasStopped = true
				break
			}
			alloc := cfg.roundAlloc(states, rounds, cfg.Trials-used)
			total := 0
			for _, a := range alloc {
				total += a
			}
			if total == 0 {
				reason = "budget"
				break
			}

			// Dispatch the round: trial indices are assigned in (stratum,
			// within-stratum) order, so the grid is a pure function of the
			// allocation history regardless of worker interleaving.
			results := make([]core.TrialResult, total)
			ran := make([]bool, total)
			slotStratum := make([]int, total)
			var rwg sync.WaitGroup
			slot := 0
		dispatch:
			for h, ss := range states {
				for i := 0; i < alloc[h]; i++ {
					j := sjob{
						spec: spec, g: g, px: pruneIdx[b],
						ts:      cfg.stratumTrialSpec(g, ss, ss.drawn+i),
						bench:   spec.Name,
						trial:   used + slot,
						stratum: ss.st.Key(),
						slot:    &results[slot],
						ran:     &ran[slot],
						wg:      &rwg,
					}
					slotStratum[slot] = h
					slot++
					rwg.Add(1)
					select {
					case <-cfg.Stop:
						rwg.Done()
						wasStopped = true
						break dispatch
					case jobs <- j:
					}
				}
			}
			rwg.Wait()
			for h, ss := range states {
				ss.drawn += alloc[h]
			}
			// Fold in slot order — deterministic at any parallelism.
			folded := 0
			for s := 0; s < total; s++ {
				if !ran[s] {
					continue
				}
				br.fold(&results[s])
				states[slotStratum[s]].rep.foldOutcome(results[s].Outcome)
				folded++
			}
			used += folded
			rounds++
			if wasStopped {
				reason = "stopped"
				break
			}
			if cfg.CITarget > 0 && samplingConverged(states, cfg.CITarget) {
				reason = "ci_target"
				break
			}
		}

		counts := make([]StratumReport, len(states))
		for h, ss := range states {
			counts[h] = ss.rep
		}
		br.Sampling = buildSampling(m.Span, m.NoInjectionSites,
			cfg.Trials, used, rounds, reason, counts)
		br.finish()
		rep.Benchmarks = append(rep.Benchmarks, br)
		rep.Fleet.merge(&br)
		if str != nil {
			str.benchDone(spec.Name, used, rounds, reason)
		}
		if wasStopped {
			break
		}
	}
	close(jobs)
	wwg.Wait()
	var rs core.RestoreStats
	for _, eng := range engines {
		rs.Add(eng.Stats())
	}
	if cfg.RestoreStats != nil {
		cfg.RestoreStats.Add(rs)
	}

	rep.Fleet.Benchmark = "fleet"
	rep.Fleet.finish()
	if str != nil {
		str.campaignDone(rep, rs)
		if err := str.err(); err != nil {
			return nil, fmt.Errorf("campaign: event stream: %w", err)
		}
	}
	if wasStopped {
		return rep, ErrStopped
	}
	return rep, nil
}

// roundAlloc decides the next round's per-stratum trial counts: the
// pilot round (round 0) spreads trials uniformly so every stratum gets
// variance evidence; later rounds are Neyman-allocated by the observed
// per-stratum binomial spread (the larger of the SDC and DUE sides,
// Jeffreys-smoothed so an all-masked stratum keeps a small share rather
// than being starved forever on possibly-noisy evidence).
func (cfg *Config) roundAlloc(states []*stratumState, round, remaining int) []int {
	H := len(states)
	alloc := make([]int, H)
	if remaining <= 0 {
		return alloc
	}
	if round == 0 {
		per := cfg.Pilot
		if per <= 0 {
			per = 8
		}
		if per < 2 {
			per = 2
		}
		total := per * H
		if total > remaining {
			total = remaining
		}
		base, rem := total/H, total%H
		for h := range alloc {
			alloc[h] = base
			if h < rem {
				alloc[h]++
			}
		}
		return alloc
	}
	size := 2 * H
	if q := cfg.Trials / 4; q > size {
		size = q
	}
	if size > remaining {
		size = remaining
	}
	weights := make([]int64, H)
	sigma := make([]float64, H)
	for h, ss := range states {
		weights[h] = ss.st.Sites
		n := float64(ss.rep.Trials - ss.rep.Internal)
		pS := (float64(ss.rep.SDC) + 0.5) / (n + 1)
		pD := (float64(ss.rep.DUE) + 0.5) / (n + 1)
		sigma[h] = math.Max(math.Sqrt(pS*(1-pS)), math.Sqrt(pD*(1-pD)))
	}
	return stats.NeymanAlloc(weights, sigma, size)
}

// samplingConverged reports whether both post-stratified rate CIs are
// within the target half-width.
func samplingConverged(states []*stratumState, target float64) bool {
	sdc := make([]stats.StratumCount, len(states))
	due := make([]stats.StratumCount, len(states))
	for h, ss := range states {
		n := ss.rep.Trials - ss.rep.Internal
		sdc[h] = stats.StratumCount{Weight: ss.st.Sites, N: n, K: ss.rep.SDC}
		due[h] = stats.StratumCount{Weight: ss.st.Sites, N: n, K: ss.rep.DUE}
	}
	return stats.StratifiedWilson95(sdc).HalfWidth() <= target &&
		stats.StratifiedWilson95(due).HalfWidth() <= target
}

// AuditBench is one benchmark's stratified-vs-exact-grid consistency
// check: the stratified point estimates must fall inside the uniform
// grid's Wilson 95% CIs computed from the same per-benchmark budget.
type AuditBench struct {
	Benchmark string `json:"benchmark"`
	// StratSDC / StratDUE are the stratified point estimates.
	StratSDC float64 `json:"strat_sdc"`
	StratDUE float64 `json:"strat_due"`
	// Uniform CI bounds from the exact grid (rates over Injected).
	UniformSDCLo float64 `json:"uniform_sdc_lo"`
	UniformSDCHi float64 `json:"uniform_sdc_hi"`
	UniformDUELo float64 `json:"uniform_due_lo"`
	UniformDUEHi float64 `json:"uniform_due_hi"`
	// UniformTrials is the grid's injected-trial denominator.
	UniformTrials int  `json:"uniform_trials"`
	Pass          bool `json:"pass"`
}

// AuditReport is the full -audit consistency check.
type AuditReport struct {
	Benchmarks []AuditBench `json:"benchmarks"`
	Pass       bool         `json:"pass"`
}

// String renders one line per benchmark.
func (a *AuditReport) String() string {
	out := ""
	for _, b := range a.Benchmarks {
		verdict := "ok"
		if !b.Pass {
			verdict = "FAIL"
		}
		out += fmt.Sprintf("audit %s: %s  sdc %.4f in [%.4f, %.4f]  due %.4f in [%.4f, %.4f]  (grid: %d injected)\n",
			b.Benchmark, verdict, b.StratSDC, b.UniformSDCLo, b.UniformSDCHi,
			b.StratDUE, b.UniformDUELo, b.UniformDUEHi, b.UniformTrials)
	}
	return out
}

// Audit runs the same budget on the uniform exact grid and checks each
// stratified estimate falls inside the grid's Wilson 95% CI. strat must
// be a report produced by RunStratified with the same Config.
func Audit(cfg Config, strat *Report) (*AuditReport, error) {
	ucfg := cfg
	ucfg.Stratify = false
	ucfg.CITarget = 0
	ucfg.Events = nil
	ucfg.Stop = nil
	ucfg.Skip = nil
	ucfg.RestoreStats = nil
	urep, err := Run(ucfg)
	if err != nil {
		return nil, fmt.Errorf("audit: uniform grid: %w", err)
	}
	uniform := map[string]*BenchReport{}
	for i := range urep.Benchmarks {
		uniform[urep.Benchmarks[i].Benchmark] = &urep.Benchmarks[i]
	}
	out := &AuditReport{Pass: true}
	for i := range strat.Benchmarks {
		sb := &strat.Benchmarks[i]
		if sb.Sampling == nil {
			continue
		}
		ub, ok := uniform[sb.Benchmark]
		if !ok {
			return nil, fmt.Errorf("audit: benchmark %s missing from uniform grid", sb.Benchmark)
		}
		ab := AuditBench{
			Benchmark:     sb.Benchmark,
			StratSDC:      sb.Sampling.SDCRate.Rate,
			StratDUE:      sb.Sampling.DUERate.Rate,
			UniformTrials: ub.Injected,
		}
		ab.UniformSDCLo, ab.UniformSDCHi = stats.Wilson95(ub.SDC, ub.Injected)
		ab.UniformDUELo, ab.UniformDUEHi = stats.Wilson95(ub.DUE, ub.Injected)
		// Wilson's lower bound at k=0 is a ~1e-17 float residue of an
		// exact algebraic zero; pin it so a stratified estimate of exactly
		// zero is inside the interval it mathematically belongs to.
		if ub.SDC == 0 {
			ab.UniformSDCLo = 0
		}
		if ub.DUE == 0 {
			ab.UniformDUELo = 0
		}
		ab.Pass = ab.StratSDC >= ab.UniformSDCLo && ab.StratSDC <= ab.UniformSDCHi &&
			ab.StratDUE >= ab.UniformDUELo && ab.StratDUE <= ab.UniformDUEHi
		out.Pass = out.Pass && ab.Pass
		out.Benchmarks = append(out.Benchmarks, ab)
	}
	return out, nil
}
