// Trial engine: the single-injection building block the statistical
// fault-injection campaigns are made of. A trial simulates the workload
// with one or more strikes armed and classifies the outcome against a
// fault-free golden run using the standard taxonomy — Masked,
// Detected+Recovered, SDC, DUE, Hang — by diffing final global memory
// rather than trusting the spec's (often sampled) Validate function.

package core

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime/debug"
	"time"

	"flame/internal/flame"
	"flame/internal/gpu"
)

// Outcome classifies one fault-injection trial.
type Outcome uint8

const (
	// OutcomeNoInjection: the injector was armed but no eligible
	// instruction executed after the arm cycle (late arms on short
	// kernels). The trial says nothing about coverage.
	OutcomeNoInjection Outcome = iota
	// OutcomeMasked: state was corrupted, no detection fired, and the
	// final memory still matches the golden run bit-for-bit (the
	// corruption was overwritten, dead, or logically masked).
	OutcomeMasked
	// OutcomeRecovered: the corruption was detected, recovery ran, and
	// the final memory matches the golden run bit-for-bit.
	OutcomeRecovered
	// OutcomeSDC: the run completed but final memory differs from the
	// golden run — a silent data corruption (even if detection fired:
	// a recovery that does not restore correct state is still an SDC).
	OutcomeSDC
	// OutcomeDUE: the simulation failed outright (bad address, fault in
	// launch machinery) — a detected unrecoverable error.
	OutcomeDUE
	// OutcomeHang: the run exhausted its cycle budget (corrupted control
	// flow livelocked the kernel), or tripped the wall-clock watchdog.
	OutcomeHang
	// OutcomeInternal: the trial infrastructure itself failed — a panic
	// inside the simulator or a scheme controller was recovered at the
	// trial boundary. It says nothing about fault coverage (the report
	// excludes it from the injected denominator) but is counted and
	// exemplified so a buggy build cannot silently eat trials.
	OutcomeInternal

	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	OutcomeNoInjection: "no-injection",
	OutcomeMasked:      "masked",
	OutcomeRecovered:   "recovered",
	OutcomeSDC:         "sdc",
	OutcomeDUE:         "due",
	OutcomeHang:        "hang",
	OutcomeInternal:    "internal",
}

// String returns the outcome's report name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Golden is the fault-free reference a campaign classifies trials
// against: the compiled program, its execution window, and the final
// global memory of a clean run.
//
// A Golden is immutable after GoldenRun returns and is shared read-only
// by every pooled Engine in a campaign (one golden, many workers). In
// particular InitMem and Mem must never be written: the dirty-page
// restore path copies from InitMem on every trial, so a stray write
// would silently corrupt every subsequent trial on every worker.
// TestGoldenSharedAcrossEnginesImmutable exercises this under the race
// detector.
type Golden struct {
	Comp *Compiled
	// StepComps are the follow-on Steps compiled once with the same
	// options, in spec order (trials reuse them instead of recompiling).
	StepComps []*Compiled
	// Window is the fault-free cycle count across all launches.
	Window int64
	// InitMem is the global-memory image after host setup, before any
	// launch; pooled-device trials restore it instead of re-running
	// spec.Setup.
	InitMem []uint32
	// Mem is the fault-free final global memory.
	Mem []uint32
	// MaxDelay is the scheme's sensor detection delay bound (WCDL for
	// sensor schemes, 0 = immediate for duplication/hybrid/baseline).
	MaxDelay int
	// diffPages is the page bitmap (gpu.PageWords-word pages) of pages
	// where Mem differs from InitMem, precomputed once so per-trial
	// classification can diff only candidate pages: a page untouched by
	// the trial AND equal between InitMem and Mem cannot diverge.
	diffPages []uint64
}

// GoldenRun compiles the spec for the scheme and performs the fault-free
// reference run, validating its output. Baseline is allowed: an
// unprotected golden run anchors masking campaigns.
func GoldenRun(cfg gpu.Config, spec *KernelSpec, opt Options) (*Golden, error) {
	comp, err := Compile(spec.Prog, opt)
	if err != nil {
		return nil, err
	}
	steps := make([]*Compiled, len(spec.Steps))
	for i, step := range spec.Steps {
		if steps[i], err = Compile(step.Prog, comp.Opt); err != nil {
			return nil, fmt.Errorf("%s step %d: %w", spec.Name, i+1, err)
		}
	}
	initMem := make([]uint32, (spec.MemBytes+3)/4)
	if spec.Setup != nil {
		spec.Setup(initMem)
	}
	res, err := RunCompiledOpts(cfg, spec, comp, nil, RunOpts{KeepMem: true})
	if err != nil {
		return nil, fmt.Errorf("golden run: %w", err)
	}
	maxDelay := comp.Opt.WCDL
	if !opt.Scheme.UsesSensors() {
		maxDelay = 0 // DMR detects at the replica; model as immediate
	}
	return &Golden{
		Comp: comp, StepComps: steps, Window: res.Stats.Cycles,
		InitMem: initMem, Mem: res.Mem, MaxDelay: maxDelay,
		diffPages: diffPageBitmap(initMem, res.Mem),
	}, nil
}

// diffPageBitmap returns the bitmap of pages (gpu.PageWords words each)
// where the two images differ. Images of unequal length never occur for
// a golden (both come from the same device geometry); the shorter bound
// keeps the helper total.
func diffPageBitmap(a, b []uint32) []uint64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	bm := make([]uint64, (((n+gpu.PageWords-1)/gpu.PageWords)+63)/64)
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			p := i / gpu.PageWords
			bm[p/64] |= 1 << uint(p%64)
			// Skip to the next page: one differing word already marks it.
			i = (p+1)*gpu.PageWords - 1
		}
	}
	return bm
}

// Fingerprint hashes the golden's memory images (FNV-1a). Campaign
// tests snapshot it before running trials and assert it unchanged
// after, pinning the shared-Golden immutability contract.
func (g *Golden) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, w := range g.InitMem {
		h = (h ^ uint64(w)) * prime
	}
	for _, w := range g.Mem {
		h = (h ^ uint64(w)) * prime
	}
	return h
}

// HangBudget returns the per-launch cycle budget for trials against this
// golden run: mult times the fault-free window plus slack for recovery
// re-execution (mult <= 0 selects the default of 8). Corrupted control
// flow then classifies as Hang after milliseconds instead of stalling a
// campaign worker for the 200M-cycle device guard.
func (g *Golden) HangBudget(mult int64) int64 {
	if mult <= 0 {
		mult = 8
	}
	return mult*g.Window + 10_000
}

// TrialSpec describes one injection trial.
type TrialSpec struct {
	// Arms are the strike arm cycles, ascending; most trials use one.
	Arms []int64
	// Model selects the injectable site set (data slice or full site).
	Model flame.FaultModel
	// Seed drives the injector's lane/bit/delay choices.
	Seed int64
	// MaxCycles bounds each launch (the hang watchdog); zero keeps the
	// device default. Use Golden.HangBudget.
	MaxCycles int64
	// Timeout, when positive, bounds the trial's wall-clock time: a
	// launch still running after it aborts with gpu.ErrWallClock and the
	// trial classifies as Hang. It is the last-resort guard distributed
	// workers arm so a simulator livelock (or a pathological budget)
	// cannot wedge a worker process; campaigns that need bit-identical
	// reports should size it generously — a fired timeout depends on
	// host speed, not on the trial's randomness.
	Timeout time.Duration
	// Hooks are extra observer hooks combined after the scheme's own on
	// every launch of the trial (main kernel and Steps alike).
	Hooks *gpu.Hooks
	// Observer, when non-nil, watches the trial (propagation tracing /
	// fingerprinting; see TrialObserver). Set by the campaign runner,
	// never by Config.TrialSpec — the spec derivation stays a pure
	// function of (seed, benchmark, trial).
	Observer TrialObserver
}

// TrialResult is one classified trial.
type TrialResult struct {
	Outcome Outcome
	// Strikes counts the strikes that corrupted state.
	Strikes int
	// ExcludedStrikes counts fired strikes in the address/control slice
	// (nonzero only under the full-site fault model).
	ExcludedStrikes int
	// Detected reports that every strike was detected.
	Detected bool
	// Detections counts detected strikes.
	Detections int
	// Recoveries counts controller recoveries performed.
	Recoveries int64
	// Cycles is the trial's simulated cycle count (partial for DUE/Hang).
	Cycles int64
	// Err preserves the failure text for DUE/Hang trials.
	Err string
	// Description says what the first strike corrupted.
	Description string
	// Pruned marks a trial classified by PruneIndex.PruneTrial without
	// simulation (the result is bit-identical to what simulation would
	// have produced; the flag keeps accelerated campaigns auditable).
	// Set by the campaign layer, never by PruneTrial itself.
	Pruned bool `json:",omitempty"`
	// Stratum is the injection-site stratum key the trial was drawn
	// from (stratified campaigns only; empty on the uniform grid).
	// Set by the campaign sampler, never by RunTrial.
	Stratum string `json:",omitempty"`
	// Prop is the propagation/fingerprint record a TrialObserver
	// attached (nil when no observer ran — the untraced result encodes
	// identically to the pre-tracing format).
	Prop *PropRecord `json:",omitempty"`
}

// RunTrial executes one injection trial against a golden run and
// classifies the outcome. The injector observes the main kernel's launch
// under the golden compilation's controller (or unprotected for a
// Baseline golden). It is the fresh-device reference path; campaigns use
// Engine.RunTrial, which reuses devices across trials with bit-identical
// results.
//
// A panic escaping the simulator or a scheme controller is recovered at
// the trial boundary and classified as OutcomeInternal: one broken trial
// must not kill a campaign worker (or, distributed, a worker process).
func RunTrial(cfg gpu.Config, spec *KernelSpec, g *Golden, ts TrialSpec) (tr *TrialResult) {
	inj := flame.NewCampaignInjector(ts.Arms, g.MaxDelay, ts.Model, ts.Seed)
	tr = &TrialResult{}
	defer recoverTrialPanic(tr, inj)
	if ts.Observer != nil {
		ts.Observer.BeginTrial(g, inj)
	}
	res, err := RunCompiledOpts(cfg, spec, g.Comp, inj, RunOpts{
		MaxCycles:    ts.MaxCycles,
		SkipValidate: true, // classification diffs against the golden memory
		KeepMem:      true,
		Hooks:        ts.observerHooks(),
		Stop:         ts.stopFunc(),
	})
	tr.Strikes = inj.FiredStrikes()
	tr.ExcludedStrikes = inj.ExcludedStrikes()
	tr.Detected = inj.Detected
	tr.Detections = inj.Detections
	tr.Description = inj.Description
	if res != nil {
		tr.Recoveries = res.Flame.Recoveries
		tr.Cycles = res.Stats.Cycles
	}
	classifyTrial(tr, err, func() (int64, bool) { return memDiff(res.Mem, g.Mem) })
	if ts.Observer != nil {
		var mem []uint32
		if res != nil {
			mem = res.Mem
		}
		ts.Observer.EndTrial(tr, mem, g)
	}
	return tr
}

// stopFunc builds the launch Stop predicate for the trial's wall-clock
// timeout (nil when none is set). The deadline is anchored when the
// trial starts, not per launch, so multi-step workloads share one
// budget.
func (ts *TrialSpec) stopFunc() func() bool {
	if ts.Timeout <= 0 {
		return nil
	}
	deadline := time.Now().Add(ts.Timeout)
	return func() bool { return time.Now().After(deadline) }
}

// recoverTrialPanic converts a panic escaping a trial into an
// OutcomeInternal result (deferred form of trialPanicResult).
func recoverTrialPanic(tr *TrialResult, inj *flame.Injector) {
	if r := recover(); r != nil {
		trialPanicResult(tr, inj, r)
	}
}

// trialPanicResult fills a trial result for a recovered panic: the panic
// value and a bounded stack land in Err for local debugging, a
// single-line description in Description so reports can exemplify the
// failure, and whatever the injector managed to record is preserved.
func trialPanicResult(tr *TrialResult, inj *flame.Injector, r any) {
	stack := debug.Stack()
	if len(stack) > 4096 {
		stack = stack[:4096]
	}
	tr.Outcome = OutcomeInternal
	tr.Err = fmt.Sprintf("trial panic: %v\n%s", r, stack)
	tr.Description = fmt.Sprintf("trial panic: %v", r)
	if inj != nil {
		tr.Strikes = inj.FiredStrikes()
		tr.ExcludedStrikes = inj.ExcludedStrikes()
	}
}

// classifyTrialErr maps a run error onto the taxonomy: a cycle-limit
// exhaustion or a fired wall-clock watchdog is a Hang, a validation
// rejection an SDC (unreachable from trials, which diff memory instead,
// but kept so the taxonomy holds for any caller), anything else a DUE.
func classifyTrialErr(tr *TrialResult, err error) {
	tr.Err = err.Error()
	switch {
	case errors.Is(err, gpu.ErrCycleLimit), errors.Is(err, gpu.ErrWallClock):
		tr.Outcome = OutcomeHang
	case errors.Is(err, ErrValidation):
		tr.Outcome = OutcomeSDC
	default:
		tr.Outcome = OutcomeDUE
	}
}

// memDiff compares two final-memory images word-by-word and returns the
// byte address of the first divergence (little-endian within the word,
// matching the simulator's byte addressing) plus whether the images are
// equal. A length mismatch diverges at the first byte past the common
// prefix.
func memDiff(a, b []uint32) (byteAddr int64, equal bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if x := a[i] ^ b[i]; x != 0 {
			return int64(i)*4 + int64(bits.TrailingZeros32(x)/8), false
		}
	}
	if len(a) != len(b) {
		return int64(n) * 4, false
	}
	return -1, true
}
