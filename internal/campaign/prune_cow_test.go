package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"flame/internal/core"
	"flame/internal/isa"
)

// TestReportIdenticalCOWvsNoCOW is the dirty-page restore contract at
// campaign level: page-granular restore/diff (the default) and
// full-image restore/scan (-no-cow) must yield byte-identical JSON
// reports at any worker count, and the deterministic page counters
// (dirty, diff) must not depend on either knob.
func TestReportIdenticalCOWvsNoCOW(t *testing.T) {
	names := []string{"Triad", "Histogram", "SRAD"}
	type run struct {
		json []byte
		rs   core.RestoreStats
	}
	do := func(parallel int, noCOW bool) run {
		cfg := testConfig(t, names, 6, parallel)
		cfg.NoCOW = noCOW
		var rs core.RestoreStats
		cfg.RestoreStats = &rs
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return run{data, rs}
	}
	ref := do(1, false)
	for _, parallel := range []int{1, 8} {
		for _, noCOW := range []bool{false, true} {
			r := do(parallel, noCOW)
			if !bytes.Equal(ref.json, r.json) {
				t.Fatalf("report differs at parallel=%d noCOW=%v:\nref:\n%s\ngot:\n%s",
					parallel, noCOW, ref.json, r.json)
			}
			if r.rs.DirtyPages != ref.rs.DirtyPages {
				t.Errorf("parallel=%d noCOW=%v: dirty pages %d, want %d (deterministic per trial)",
					parallel, noCOW, r.rs.DirtyPages, ref.rs.DirtyPages)
			}
			if !noCOW && r.rs.DiffPages != ref.rs.DiffPages {
				t.Errorf("parallel=%d: diff pages %d, want %d (deterministic per trial)",
					parallel, r.rs.DiffPages, ref.rs.DiffPages)
			}
			if noCOW && r.rs.DiffPages != 0 {
				t.Errorf("parallel=%d noCOW: diff pages %d, want 0 (full scans bypass the page counter)",
					parallel, r.rs.DiffPages)
			}
		}
	}
	if ref.rs.DirtyPages <= 0 || ref.rs.DiffPages <= 0 {
		t.Fatalf("page counters did not accumulate: %+v", ref.rs)
	}
}

// TestPruneReportMatchesFullSimulation is the pruning contract at
// campaign level: with Prune on, the report must be byte-identical to
// the fully-simulated report except for the pruned_* counters — same
// outcomes, same coverage, same exemplar strings — at any worker count.
// It runs both a controller-less scheme (Baseline, where dead-register
// strikes prune as Masked outright) and a detecting scheme (flame,
// where the static detection-outcome model keeps the pruner live:
// SRAD's multi-launch window arms trials past the main kernel, and
// those prune to NoInjection without consulting the controller).
func TestPruneReportMatchesFullSimulation(t *testing.T) {
	names := []string{"Triad", "Histogram", "SRAD"}
	schemes := []struct {
		name string
		opt  core.Options
	}{
		{"baseline", core.Options{Scheme: core.Baseline}},
		{"flame", core.FlameOptions()},
	}
	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			do := func(parallel int, prune bool) *Report {
				cfg := testConfig(t, names, 25, parallel)
				cfg.Opt = sc.opt
				cfg.Prune = prune
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			full, err := do(4, false).JSON()
			if err != nil {
				t.Fatal(err)
			}
			for _, parallel := range []int{1, 8} {
				pruned := do(parallel, true)
				got := pruned.Fleet.PrunedMasked + pruned.Fleet.PrunedNoInjection
				if got == 0 {
					t.Fatalf("parallel=%d: pruner classified no trials; the equivalence check is vacuous", parallel)
				}
				// Erase the only fields allowed to differ, then demand byte
				// equality with the fully-simulated report.
				for i := range pruned.Benchmarks {
					pruned.Benchmarks[i].PrunedMasked = 0
					pruned.Benchmarks[i].PrunedNoInjection = 0
				}
				pruned.Fleet.PrunedMasked = 0
				pruned.Fleet.PrunedNoInjection = 0
				data, err := pruned.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(full, data) {
					t.Fatalf("parallel=%d: pruned report differs beyond pruned_* counters:\nfull:\n%s\npruned:\n%s",
						parallel, full, data)
				}
				t.Logf("parallel=%d: %d trials pruned, report otherwise byte-identical", parallel, got)
			}
		})
	}
}

// entryLivenessSpec is a valid kernel (r5 reads the architectural zero
// of an unwritten register) that nonetheless trips the prune index's
// entry-liveness soundness gate, forcing the silent-fallback path.
func entryLivenessSpec() *core.KernelSpec {
	const src = `
	    mov r0, %tid.x
	    shl r1, r0, 2
	    ld.param r2, [0]
	    add r3, r2, r1
	    add r4, r5, 1
	    st.global [r3], r4
	    exit
	`
	return &core.KernelSpec{
		Name:     "entrylive",
		Prog:     isa.MustParse("entrylive", src),
		Grid:     isa.Dim3{X: 1},
		Block:    isa.Dim3{X: 32},
		Params:   []uint32{0},
		MemBytes: 1 << 12,
		Validate: func(mem []uint32) error {
			for i := 0; i < 32; i++ {
				if mem[i] != 1 {
					return fmt.Errorf("word %d = %d, want 1", i, mem[i])
				}
			}
			return nil
		},
	}
}

// TestPruneDisabledSurfaced: a workload whose index fails a soundness
// gate must say so — in its BenchReport, in the JSONL stream (and so in
// the replayed report, byte-identically), while live workloads stay
// unmarked and prune-off reports keep their existing bytes.
func TestPruneDisabledSurfaced(t *testing.T) {
	mkcfg := func() Config {
		cfg := testConfig(t, []string{"Histogram"}, 12, 4)
		cfg.Opt = core.Options{Scheme: core.Baseline}
		cfg.Specs = append(cfg.Specs, entryLivenessSpec())
		return cfg
	}
	cfg := mkcfg()
	cfg.Prune = true
	var buf bytes.Buffer
	cfg.Events = &buf
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Benchmarks[0].PruneDisabled; got != "" {
		t.Errorf("live index marked disabled: %q", got)
	}
	reason := rep.Benchmarks[1].PruneDisabled
	if !strings.Contains(reason, "entry liveness") {
		t.Fatalf("entrylive PruneDisabled = %q, want an entry-liveness reason", reason)
	}
	if rep.Fleet.PruneDisabled != "" {
		t.Errorf("fleet aggregate carries a per-workload fallback: %q", rep.Fleet.PruneDisabled)
	}
	if rep.Benchmarks[0].PrunedMasked+rep.Benchmarks[0].PrunedNoInjection == 0 {
		t.Error("live workload pruned nothing; the mixed-campaign check is vacuous")
	}
	if !strings.Contains(buf.String(), `"event":"prune_disabled"`) {
		t.Fatalf("stream carries no prune_disabled event:\n%s", buf.String())
	}
	replayed, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rep.JSON()
	got, _ := replayed.JSON()
	if !bytes.Equal(want, got) {
		t.Fatalf("replayed report differs:\nrun:\n%s\nreplay:\n%s", want, got)
	}

	// Prune off: the key must not appear at all (omitempty contract).
	off, err := Run(mkcfg())
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := off.JSON(); bytes.Contains(data, []byte("prune_disabled")) {
		t.Fatalf("prune-off report grew a prune_disabled field:\n%s", data)
	}

	// The stratified path surfaces the same fallback.
	scfg := mkcfg()
	scfg.Stratify = true
	scfg.Pilot = 4
	scfg.Prune = true
	srep, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := srep.Benchmarks[1].PruneDisabled; got != reason {
		t.Fatalf("stratified PruneDisabled = %q, want %q", got, reason)
	}
}

// TestPrunedEventStreamReplays pins the stream round-trip of the Pruned
// marker: a pruned campaign's JSONL replays into the same report,
// pruned counters included.
func TestPrunedEventStreamReplays(t *testing.T) {
	cfg := testConfig(t, []string{"Histogram"}, 25, 4)
	cfg.Opt = core.Options{Scheme: core.Baseline}
	cfg.Prune = true
	var buf bytes.Buffer
	cfg.Events = &buf
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fleet.PrunedMasked+rep.Fleet.PrunedNoInjection == 0 {
		t.Fatal("campaign pruned nothing; replay check is vacuous")
	}
	replayed, err := Replay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replayed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("replayed pruned report differs:\nrun:\n%s\nreplay:\n%s", want, got)
	}
}
