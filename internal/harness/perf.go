package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"flame/internal/bench"
	"flame/internal/campaign"
	"flame/internal/core"
	"flame/internal/gpu"
	"flame/internal/isa"
)

// PerfReport is the repo's performance trajectory record, written to
// BENCH_sim.json by `flamebench -exp perf` and uploaded by CI so every
// PR's throughput can be compared against its predecessors. All rates
// are wall-clock and therefore machine-dependent; the Host fields exist
// so cross-machine numbers are never compared blindly.
type PerfReport struct {
	// Timestamp is when the measurement ran (UTC, RFC 3339). Together
	// with Host.Commit it keys the run in the BENCH_sim.json history.
	Timestamp string `json:"timestamp,omitempty"`
	// Host identifies the measuring machine class.
	Host struct {
		OS     string `json:"os"`
		Arch   string `json:"arch"`
		CPUs   int    `json:"cpus"`
		GoVer  string `json:"go"`
		Commit string `json:"commit,omitempty"`
	} `json:"host"`
	// SimCyclesPerSec is Device.Run throughput on a memory-bound
	// benchmark with event-driven cycle skipping on (the default) and
	// off (the naive per-cycle loop).
	SimCyclesPerSec      float64 `json:"sim_cycles_per_sec"`
	SimCyclesPerSecNaive float64 `json:"sim_cycles_per_sec_naive"`
	SkipSpeedup          float64 `json:"skip_speedup"`
	// TrialsPerSec is end-to-end campaign throughput (mini-campaign,
	// all workers) and AllocsPerTrial / BytesPerTrial the per-trial
	// allocation cost measured single-threaded on one pooled engine.
	CampaignTrials int     `json:"campaign_trials"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	BytesPerTrial  float64 `json:"bytes_per_trial"`
	Benchmark      string  `json:"benchmark"`

	// Page-granular restore accounting for the campaign above (COW on,
	// the default): mean pages copied back from the golden image per
	// trial and mean pages scanned during classification. The benchmark's
	// footprint in pages gives the denominator a full copy/scan would pay.
	FootprintPages        int     `json:"footprint_pages,omitempty"`
	RestoredPagesPerTrial float64 `json:"restored_pages_per_trial,omitempty"`
	DiffPagesPerTrial     float64 `json:"diff_pages_per_trial,omitempty"`

	// Restore-bound microbenchmark: a tiny kernel over a large footprint
	// (worst case for full-image restore, best case for dirty-page
	// restore), measured with page tracking on and off over the same
	// trial set. CowSpeedup is the headline restore-path win; reports are
	// byte-identical either way, so only the rate may differ.
	RestoreBound struct {
		Benchmark             string  `json:"benchmark"`
		FootprintPages        int     `json:"footprint_pages"`
		Trials                int     `json:"trials"`
		TrialsPerSec          float64 `json:"trials_per_sec"`
		TrialsPerSecNoCOW     float64 `json:"trials_per_sec_no_cow"`
		CowSpeedup            float64 `json:"cow_speedup"`
		RestoredPagesPerTrial float64 `json:"restored_pages_per_trial"`
		// PrunedFraction is the share of this workload's trials the
		// dataflow-slice pruner classifies without simulation (Baseline
		// scheme; detecting schemes disable pruning).
		PrunedFraction float64 `json:"pruned_fraction"`
	} `json:"restore_bound"`

	// Sampling holds the stratified-sampling efficiency study from
	// `flamebench -exp sampling` (see SamplingStudy). Entries carrying
	// only Sampling have TrialsPerSec 0 and are skipped by the perf
	// guard's baseline walk.
	Sampling []SamplingBenchPerf `json:"sampling,omitempty"`
}

// HostKey is the machine-class key for comparing history entries: rates
// from different OS/arch/CPU-count/Go combinations are never compared.
func (r *PerfReport) HostKey() string {
	return fmt.Sprintf("%s/%s/cpus:%d/%s", r.Host.OS, r.Host.Arch, r.Host.CPUs, r.Host.GoVer)
}

// PerfBench measures simulator and campaign throughput and writes the
// report to outPath (BENCH_sim.json). The workload choices mirror the
// micro-benchmarks in internal/gpu and internal/core but run through
// the public entry points, so the numbers track what users of flamesim
// and flameinject actually experience.
func PerfBench(cfg Config, outPath string, trials int) (*PerfReport, error) {
	cfg.fill()
	if trials <= 0 {
		trials = 50
	}
	rep := &PerfReport{Benchmark: "Triad"}
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	rep.Host.OS = runtime.GOOS
	rep.Host.Arch = runtime.GOARCH
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GoVer = runtime.Version()
	rep.Host.Commit = headCommit()

	b, err := bench.ByName(rep.Benchmark)
	if err != nil {
		return nil, err
	}
	spec := b.Spec()

	// Device.Run throughput, skip on vs off. Repeat runs until a
	// minimum wall-clock budget is spent so short kernels still give a
	// stable rate on noisy machines.
	measure := func(noSkip bool) (float64, error) {
		arch := cfg.Arch
		arch.NoCycleSkip = noSkip
		var cycles int64
		start := time.Now()
		for time.Since(start) < 300*time.Millisecond {
			res, err := core.Run(arch, spec, core.Options{Scheme: core.Baseline})
			if err != nil {
				return 0, err
			}
			cycles += res.Stats.Cycles
		}
		return float64(cycles) / time.Since(start).Seconds(), nil
	}
	if rep.SimCyclesPerSec, err = measure(false); err != nil {
		return nil, err
	}
	if rep.SimCyclesPerSecNaive, err = measure(true); err != nil {
		return nil, err
	}
	rep.SkipSpeedup = rep.SimCyclesPerSec / rep.SimCyclesPerSecNaive

	// Per-trial allocation cost: single goroutine, one pooled engine,
	// Mallocs/TotalAlloc deltas across `trials` trials.
	g, err := core.GoldenRun(cfg.Arch, spec, core.FlameOptions())
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(cfg.Arch)
	ts := core.TrialSpec{Seed: 1, MaxCycles: g.HangBudget(0)}
	ts.Arms = []int64{g.Window / 3}
	eng.RunTrial(spec, g, ts) // warm the device cache before measuring
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < trials; i++ {
		ts.Arms[0] = (int64(i) * g.Window) / int64(trials)
		ts.Seed = int64(i) + 7
		eng.RunTrial(spec, g, ts)
	}
	runtime.ReadMemStats(&after)
	rep.AllocsPerTrial = float64(after.Mallocs-before.Mallocs) / float64(trials)
	rep.BytesPerTrial = float64(after.TotalAlloc-before.TotalAlloc) / float64(trials)

	// End-to-end campaign throughput with the default worker count,
	// collecting the engines' page accounting as a side channel.
	var rs core.RestoreStats
	ccfg := campaign.Config{
		Arch:         cfg.Arch,
		Opt:          core.FlameOptions(),
		Specs:        []*core.KernelSpec{spec},
		Trials:       trials,
		Seed:         1,
		RestoreStats: &rs,
	}
	start := time.Now()
	if _, err := campaign.Run(ccfg); err != nil {
		return nil, err
	}
	rep.CampaignTrials = trials
	rep.TrialsPerSec = float64(trials) / time.Since(start).Seconds()
	rep.FootprintPages = (spec.MemBytes + gpu.PageBytes - 1) / gpu.PageBytes
	if rs.Trials > 0 {
		rep.RestoredPagesPerTrial = float64(rs.RestoredPages) / float64(rs.Trials)
		rep.DiffPagesPerTrial = float64(rs.DiffPages) / float64(rs.Trials)
	}

	if err := perfRestoreBound(cfg, rep, trials); err != nil {
		return nil, err
	}

	if outPath != "" {
		if err := AppendPerfHistory(outPath, rep); err != nil {
			return nil, err
		}
	}
	cfg.printf("perf: %.0f simcycles/s (%.2fx over naive), %.1f trials/s, %.0f allocs/trial\n",
		rep.SimCyclesPerSec, rep.SkipSpeedup, rep.TrialsPerSec, rep.AllocsPerTrial)
	cfg.printf("perf: restore-bound %s: %.1f trials/s cow vs %.1f no-cow (%.2fx), %.1f/%d pages restored/trial, %.0f%% pruned\n",
		rep.RestoreBound.Benchmark, rep.RestoreBound.TrialsPerSec, rep.RestoreBound.TrialsPerSecNoCOW,
		rep.RestoreBound.CowSpeedup, rep.RestoreBound.RestoredPagesPerTrial,
		rep.RestoreBound.FootprintPages, rep.RestoreBound.PrunedFraction*100)
	return rep, nil
}

// restoreBoundSpec is the restore-bound microbenchmark: 128 threads
// increment 128 contiguous words (one dirty page) of a 4 MB footprint
// (4096 pages). A full-image restore copies and scans 4096x what the
// trial touched, so the workload isolates the restore/diff path the way
// Triad isolates memory bandwidth. The live work is latency-free (the
// stored value is computed, not loaded), and the tail is a load whose
// value feeds only the never-read r10: its memory latency stretches the
// back of the execution window with cycles where every strike lands on
// a provably dead register, giving the trial pruner a measurable hit
// rate on top of the restore-path win.
func restoreBoundSpec() *core.KernelSpec {
	const src = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    shl r4, r3, 2
	    ld.param r5, [0]
	    add r6, r5, r4
	    add r8, r3, 1
	    st.global [r6], r8
	    ld.global r9, [r6]
	    mul r10, r9, 3
	    exit
	`
	const n = 2 * 64
	return &core.KernelSpec{
		Name:     "RestoreBound",
		Prog:     isa.MustParse("restorebound", src),
		Grid:     isa.Dim3{X: 2},
		Block:    isa.Dim3{X: 64},
		Params:   []uint32{0},
		MemBytes: 4 << 20,
		Validate: func(mem []uint32) error {
			for i := 0; i < n; i++ {
				if mem[i] != uint32(i+1) {
					return fmt.Errorf("mem[%d] = %d, want %d", i, mem[i], i+1)
				}
			}
			return nil
		},
	}
}

// perfRestoreBound measures the restore-bound microbenchmark with page
// tracking on and off over the same derived trial set, plus the trial
// pruner's hit rate on it.
func perfRestoreBound(cfg Config, rep *PerfReport, trials int) error {
	spec := restoreBoundSpec()
	g, err := core.GoldenRun(cfg.Arch, spec, core.Options{Scheme: core.Baseline})
	if err != nil {
		return err
	}
	rb := &rep.RestoreBound
	rb.Benchmark = spec.Name
	rb.FootprintPages = (spec.MemBytes + gpu.PageBytes - 1) / gpu.PageBytes
	rb.Trials = trials
	ccfg := campaign.Config{Seed: 2}
	measure := func(noCOW bool) (float64, core.RestoreStats) {
		eng := core.NewEngine(cfg.Arch)
		eng.SetNoCOW(noCOW)
		eng.RunTrial(spec, g, ccfg.TrialSpec(g, spec.Name, 0)) // warm the pooled device
		n := 0
		start := time.Now()
		for time.Since(start) < 300*time.Millisecond {
			for i := 0; i < trials; i++ {
				eng.RunTrial(spec, g, ccfg.TrialSpec(g, spec.Name, i))
				n++
			}
		}
		return float64(n) / time.Since(start).Seconds(), eng.Stats()
	}
	var cowStats core.RestoreStats
	rb.TrialsPerSec, cowStats = measure(false)
	rb.TrialsPerSecNoCOW, _ = measure(true)
	rb.CowSpeedup = rb.TrialsPerSec / rb.TrialsPerSecNoCOW
	if cowStats.Trials > 0 {
		rb.RestoredPagesPerTrial = float64(cowStats.RestoredPages) / float64(cowStats.Trials)
	}

	px := core.BuildPruneIndex(cfg.Arch, spec, g, 0)
	pruned := 0
	for i := 0; i < trials; i++ {
		if _, ok := px.PruneTrial(g, ccfg.TrialSpec(g, spec.Name, i)); ok {
			pruned++
		}
	}
	rb.PrunedFraction = float64(pruned) / float64(trials)
	return nil
}

// CheckPerfRegression compares the newest entry of the perf history at
// path against the most recent earlier entry with the same HostKey and
// returns an error when campaign trials_per_sec regressed by more than
// the tolerance fraction (tolerance <= 0 selects 0.20). Entries from
// other host keys are skipped — wall-clock rates are only comparable on
// the same machine class — and a history with no comparable predecessor
// passes vacuously.
func CheckPerfRegression(path string, tolerance float64) error {
	if tolerance <= 0 {
		tolerance = 0.20
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var history []PerfReport
	trimmed := bytes.TrimSpace(data)
	switch {
	case len(trimmed) == 0:
		return fmt.Errorf("harness: %s: empty perf history", path)
	case trimmed[0] == '{':
		// Legacy format: one bare report object — nothing to compare.
		var one PerfReport
		if err := json.Unmarshal(trimmed, &one); err != nil {
			return err
		}
		return nil
	default:
		if err := json.Unmarshal(trimmed, &history); err != nil {
			return err
		}
	}
	if len(history) == 0 {
		return fmt.Errorf("harness: %s: empty perf history", path)
	}
	// Head: the newest entry that measured campaign throughput. Entries
	// with no trials_per_sec (a sampling-only study, a partial write)
	// cannot regress anything and are not the measurement under test.
	li := -1
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].TrialsPerSec > 0 {
			li = i
			break
		}
	}
	if li < 0 {
		return nil // nothing measured: vacuous
	}
	last := &history[li]
	for i := li - 1; i >= 0; i-- {
		prev := &history[i]
		if prev.HostKey() != last.HostKey() || prev.TrialsPerSec <= 0 {
			continue
		}
		// Legacy entries predate run keying: with no timestamp or commit
		// the baseline is unattributable, so it cannot anchor a guard.
		if prev.Timestamp == "" || prev.Host.Commit == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "harness: perf-guard baseline: commit %s @ %s, %.1f trials/s (head: %.1f trials/s)\n",
			prev.Host.Commit, prev.Timestamp, prev.TrialsPerSec, last.TrialsPerSec)
		if floor := prev.TrialsPerSec * (1 - tolerance); last.TrialsPerSec < floor {
			return fmt.Errorf("harness: perf regression on %s: %.1f trials/s is more than %.0f%% below the previous entry's %.1f (floor %.1f)",
				last.HostKey(), last.TrialsPerSec, tolerance*100, prev.TrialsPerSec, floor)
		}
		return nil
	}
	return nil
}

// headCommit identifies the measured revision: CI's GITHUB_SHA when set,
// otherwise a best-effort `git rev-parse`; empty when neither works.
func headCommit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// AppendPerfHistory appends the report to the JSON history at path, so
// BENCH_sim.json accumulates the performance trajectory across commits
// instead of only remembering the latest run. The file is a JSON array
// in time order; a legacy single-object file (the pre-history format) is
// migrated into a one-element array before appending. Unreadable or
// corrupt existing content is an error — history is never silently
// discarded.
func AppendPerfHistory(path string, rep *PerfReport) error {
	var history []json.RawMessage
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 {
			if trimmed[0] == '{' {
				// Legacy format: one bare report object.
				var legacy json.RawMessage
				if err := json.Unmarshal(trimmed, &legacy); err != nil {
					return err
				}
				history = append(history, legacy)
			} else if err := json.Unmarshal(trimmed, &history); err != nil {
				return err
			}
		}
	case os.IsNotExist(err):
		// First run: start a fresh history.
	default:
		return err
	}
	entry, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	history = append(history, entry)
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
