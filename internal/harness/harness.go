// Package harness reproduces every table and figure of the paper's
// evaluation section: the sensor-deployment curves (Figure 12, Table II),
// the per-benchmark and average overhead comparisons (Figures 13-15), the
// region-extension ablation (Figure 16), the WCDL / scheduler /
// architecture sensitivity studies (Figures 17-19), the Section IV
// discussion numbers, the hardware-cost arithmetic (Section VI-A2), and
// a fault-injection validation campaign.
package harness

import (
	"fmt"
	"io"

	"flame/internal/bench"
	"flame/internal/core"
	"flame/internal/gpu"
	"flame/internal/stats"
)

// Config selects what the experiments run on.
type Config struct {
	// Arch is the GPU configuration (default GTX480).
	Arch gpu.Config
	// WCDL is the default sensor latency (default 20 cycles).
	WCDL int
	// Benchmarks restricts the workloads (default bench.All()).
	Benchmarks []*bench.Benchmark
	// Out receives the printed tables (nil = discard).
	Out io.Writer
}

// Default returns the paper's default setup: GTX480, 20-cycle WCDL, GTO,
// all 34 benchmarks.
func Default() Config {
	return Config{Arch: gpu.GTX480(), WCDL: 20, Benchmarks: bench.All()}
}

func (c *Config) fill() {
	if c.Arch.Name == "" {
		c.Arch = gpu.GTX480()
	}
	if c.WCDL == 0 {
		c.WCDL = 20
	}
	if c.Benchmarks == nil {
		c.Benchmarks = bench.All()
	}
}

func (c *Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// runner caches baseline runs per (arch, scheduler, benchmark).
type runner struct {
	cfg      *Config
	baseline map[string]float64 // key -> baseline cycles
}

func newRunner(cfg *Config) *runner {
	cfg.fill()
	return &runner{cfg: cfg, baseline: map[string]float64{}}
}

func (r *runner) key(arch gpu.Config, b *bench.Benchmark) string {
	return arch.Name + "/" + arch.Scheduler.String() + "/" + b.Name
}

// overhead runs benchmark b under the scheme options on arch and returns
// its execution time normalized to the cached baseline.
func (r *runner) overhead(arch gpu.Config, b *bench.Benchmark, opt core.Options) (float64, error) {
	k := r.key(arch, b)
	base, ok := r.baseline[k]
	if !ok {
		res, err := core.Run(arch, b.Spec(), core.Options{Scheme: core.Baseline})
		if err != nil {
			return 0, fmt.Errorf("baseline %s: %w", b.Name, err)
		}
		base = float64(res.Stats.Cycles)
		r.baseline[k] = base
	}
	res, err := core.Run(arch, b.Spec(), opt)
	if err != nil {
		return 0, fmt.Errorf("%s/%s: %w", b.Name, opt.Scheme, err)
	}
	return float64(res.Stats.Cycles) / base, nil
}

// flameOptions returns the full Flame configuration at the config's WCDL.
func (c *Config) flameOptions() core.Options {
	return core.Options{Scheme: core.SensorRenaming, WCDL: c.WCDL, ExtendRegions: true}
}

// OverheadMatrix is the result of Figures 13-15: normalized execution
// times indexed [scheme][benchmark].
type OverheadMatrix struct {
	Benchmarks []string
	Schemes    []core.Scheme
	// Norm[i][j] is scheme i's normalized time on benchmark j.
	Norm [][]float64
}

// Geomeans returns each scheme's geometric-mean normalized time
// (Figure 15).
func (m *OverheadMatrix) Geomeans() []float64 {
	out := make([]float64, len(m.Schemes))
	for i := range m.Schemes {
		out[i] = stats.Geomean(m.Norm[i])
	}
	return out
}

// SchemeRow returns the row of a scheme, or nil.
func (m *OverheadMatrix) SchemeRow(s core.Scheme) []float64 {
	for i, sc := range m.Schemes {
		if sc == s {
			return m.Norm[i]
		}
	}
	return nil
}

// Figure13_14 measures normalized execution time for every non-baseline
// scheme on every benchmark (the paper's per-application bars), with
// Flame = Sensor+Renaming including the region-extension optimization.
func Figure13_14(cfg Config) (*OverheadMatrix, error) {
	r := newRunner(&cfg)
	schemes := []core.Scheme{
		core.Renaming, core.Checkpointing,
		core.SensorRenaming, core.SensorCheckpointing,
		core.DupRenaming, core.DupCheckpointing,
		core.HybridRenaming, core.HybridCheckpointing,
	}
	m := &OverheadMatrix{Schemes: schemes}
	for _, b := range cfg.Benchmarks {
		m.Benchmarks = append(m.Benchmarks, b.Name)
	}
	for _, s := range schemes {
		opt := core.Options{Scheme: s, WCDL: cfg.WCDL}
		if s == core.SensorRenaming {
			opt.ExtendRegions = true // the full Flame design
		}
		row := make([]float64, 0, len(cfg.Benchmarks))
		for _, b := range cfg.Benchmarks {
			ov, err := r.overhead(cfg.Arch, b, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, ov)
		}
		m.Norm = append(m.Norm, row)
	}

	t := &stats.Table{Header: append([]string{"benchmark"}, schemeNames(schemes)...)}
	for j, name := range m.Benchmarks {
		cells := []any{name}
		for i := range schemes {
			cells = append(cells, m.Norm[i][j])
		}
		t.Add(cells...)
	}
	cfg.printf("Figure 13/14: normalized execution time (%s, WCDL=%d, %s)\n%s\n",
		cfg.Arch.Name, cfg.WCDL, cfg.Arch.Scheduler, t)
	return m, nil
}

// Figure15 prints the geometric means of a Figure 13/14 matrix.
func Figure15(cfg Config, m *OverheadMatrix) []stats.Series {
	g := m.Geomeans()
	t := &stats.Table{Header: []string{"scheme", "geomean", "overhead"}}
	labels := make([]string, len(m.Schemes))
	for i, s := range m.Schemes {
		labels[i] = s.String()
		t.Add(s.String(), g[i], stats.OverheadPct(g[i]))
	}
	cfg.printf("Figure 15: average normalized execution time (geomean)\n%s\n", t)
	return []stats.Series{{Name: "geomean", Labels: labels, Values: g}}
}

func schemeNames(ss []core.Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.String()
	}
	return out
}
