package vet

import (
	"bytes"
	"encoding/json"
	"testing"

	"flame/internal/bench"
	"flame/internal/core"
	"flame/internal/flame"
	"flame/internal/gpu"
)

func avfConfig(t *testing.T, trials int) AVFConfig {
	t.Helper()
	arch := gpu.GTX480()
	arch.NumSMs = 2
	names := []string{"Triad", "Histogram", "SRAD", "GUPS"}
	specs := make([]*core.KernelSpec, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = b.Spec()
	}
	return AVFConfig{
		Arch:  arch,
		Specs: specs,
		Schemes: []core.Options{
			{Scheme: core.Renaming, WCDL: 20, ExtendRegions: true},
			core.FlameOptions(),
		},
		Model:    flame.DataSlice,
		Trials:   trials,
		Parallel: 4,
		Seed:     7,
	}
}

// The AVF gate itself: on the quick suite, under both a recovery-only
// scheme (Renaming: regions compiled, no runtime controller) and the
// detecting flame scheme, every sharp prediction must fall inside the
// campaign's measured Wilson 95% CI and every pair must satisfy the
// ACE soundness band. The suite is chosen to exercise all model
// regimes: GUPS (recovery-only but fully dead — a sharp non-detecting
// pair), Histogram (half certain-masked), Triad and SRAD (residual
// value-dependent mass), and all four under the detecting flame scheme
// (exact detection-outcome model).
func TestAVFCrossValidateQuickSuite(t *testing.T) {
	rep, err := AVFCrossValidate(avfConfig(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Pairs) != 8 {
		t.Fatalf("gated %d pairs, want 8", len(rep.Pairs))
	}
	sharpRecoveryOnly := 0
	for _, p := range rep.Pairs {
		if p.Detecting != (p.Scheme == core.SensorRenaming.String()) {
			t.Errorf("%s/%s: detecting=%v", p.Benchmark, p.Scheme, p.Detecting)
		}
		if p.Detecting && (p.PredRecovered != 1 || p.PredMasked != 0 || !p.Sharp) {
			t.Errorf("%s/%s: detecting prediction %+v", p.Benchmark, p.Scheme, p)
		}
		if !p.Detecting && p.Sharp {
			sharpRecoveryOnly++
		}
	}
	// The gate must hold a strict point check on at least one
	// recovery-only pair too (GUPS: every corruptible site is dead).
	if sharpRecoveryOnly == 0 {
		t.Errorf("no sharp recovery-only pair in the gate:\n%s", rep)
	}
	if !rep.Pass {
		t.Fatalf("AVF cross-validation failed:\n%s", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round AVFReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(round.Predictions) != len(rep.Predictions) {
		t.Fatalf("round-trip lost predictions: %d vs %d", len(round.Predictions), len(rep.Predictions))
	}
}
