package campaign

import (
	"bytes"
	"testing"

	"flame/internal/bench"
	"flame/internal/core"
	"flame/internal/flame"
	"flame/internal/gpu"
)

func testConfig(t *testing.T, names []string, trials, parallel int) Config {
	t.Helper()
	arch := gpu.GTX480()
	arch.NumSMs = 2
	specs := make([]*core.KernelSpec, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = b.Spec()
	}
	return Config{
		Arch:     arch,
		Opt:      core.FlameOptions(),
		Specs:    specs,
		Trials:   trials,
		Parallel: parallel,
		Seed:     42,
	}
}

// TestReportDeterministicAcrossWorkerCounts is the reproducibility
// contract: the same campaign config yields byte-identical JSON reports
// with 1 and 8 workers.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	names := []string{"Triad", "Histogram"}
	run := func(parallel int) []byte {
		rep, err := Run(testConfig(t, names, 6, parallel))
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("reports differ across worker counts:\n-parallel 1:\n%s\n-parallel 8:\n%s", seq, par)
	}
}

// TestReportIdenticalWithCycleSkipOnOff: event-driven fast-forwarding
// must not change a single byte of a campaign report — every trial's
// cycle counts, outcomes and error strings are identical to the naive
// per-cycle loop's, under both an unprotected Baseline and the full
// Flame scheme (injection, RBQ waits and recoveries in the loop).
func TestReportIdenticalWithCycleSkipOnOff(t *testing.T) {
	for _, scheme := range []struct {
		name string
		opt  core.Options
	}{
		{"flame", core.FlameOptions()},
		{"baseline", core.Options{Scheme: core.Baseline}},
	} {
		t.Run(scheme.name, func(t *testing.T) {
			run := func(noSkip bool) []byte {
				cfg := testConfig(t, []string{"Triad", "Histogram"}, 6, 4)
				cfg.Opt = scheme.opt
				cfg.Arch.NoCycleSkip = noSkip
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				data, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return data
			}
			fast := run(false)
			naive := run(true)
			if !bytes.Equal(fast, naive) {
				t.Fatalf("reports differ with cycle skipping on/off:\nskip:\n%s\nnaive:\n%s", fast, naive)
			}
		})
	}
}

// TestCampaignCoverageDataSlice: under the paper's fault model with the
// full Flame scheme, a small campaign reports zero SDC and zero Hang,
// and the derived rates are consistent.
func TestCampaignCoverageDataSlice(t *testing.T) {
	rep, err := Run(testConfig(t, []string{"Triad", "BFS"}, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	f := &rep.Fleet
	if f.SDC != 0 || f.Hang != 0 || f.DUE != 0 {
		t.Fatalf("uncovered outcomes under Flame/data-slice:\n%s", rep)
	}
	if f.Trials != 16 || f.Injected != f.Trials-f.NoInjection {
		t.Fatalf("count identity broken: %+v", f)
	}
	if got := f.Masked + f.Recovered + f.SDC + f.DUE + f.Hang + f.NoInjection; got != f.Trials {
		t.Fatalf("outcomes sum to %d, want %d", got, f.Trials)
	}
	if f.Injected > 0 && (f.CoverageLo > f.Coverage || f.Coverage > f.CoverageHi) {
		t.Fatalf("coverage %v outside its CI [%v, %v]", f.Coverage, f.CoverageLo, f.CoverageHi)
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].WindowCycles <= 0 {
		t.Fatalf("benchmark rows: %+v", rep.Benchmarks)
	}
	if rep.Fleet.ExcludedStrikes != 0 {
		t.Fatalf("data-slice campaign struck the excluded set %d times", rep.Fleet.ExcludedStrikes)
	}
}

// TestCampaignFullSiteFindsUncovered: the full-site model on an
// unprotected Baseline reports its outcomes without error and records
// excluded-site strikes (the boundary the data-slice model hides).
func TestCampaignFullSiteFindsUncovered(t *testing.T) {
	cfg := testConfig(t, []string{"Triad"}, 12, 4)
	cfg.Opt = core.Options{Scheme: core.Baseline}
	cfg.Model = flame.FullSite
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Fleet.Masked + rep.Fleet.Recovered + rep.Fleet.SDC + rep.Fleet.DUE +
		rep.Fleet.Hang + rep.Fleet.NoInjection; got != 12 {
		t.Fatalf("outcomes sum to %d, want 12:\n%s", got, rep)
	}
	if rep.Model != "full" {
		t.Fatalf("model = %q", rep.Model)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Trials: 1}); err == nil {
		t.Fatal("empty spec list must error")
	}
	cfg := testConfig(t, []string{"Triad"}, 0, 1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestSeedDerivation(t *testing.T) {
	// Distinct benchmarks and trial indices get distinct seeds; the
	// derivation is pure.
	if benchSeed(1, "A") == benchSeed(1, "B") {
		t.Fatal("bench seeds collide")
	}
	if benchSeed(1, "A") != benchSeed(1, "A") {
		t.Fatal("bench seed not pure")
	}
	root := benchSeed(7, "Triad")
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := trialSeed(root, i)
		if seen[s] {
			t.Fatalf("trial seed collision at %d", i)
		}
		seen[s] = true
	}
}
