package gpu

import (
	"errors"
	"fmt"

	"flame/internal/isa"
)

// ErrCycleLimit is wrapped by Run's error when a launch exhausts its
// cycle budget (deadlock, livelock or runaway kernel). Campaign
// classifiers match it with errors.Is to tell a Hang from other
// simulator failures.
var ErrCycleLimit = errors.New("cycle limit exceeded")

// Device is a simulated GPU.
type Device struct {
	Cfg   Config
	Mem   *GlobalMem
	SMs   []*SM
	l2    *cacheModel
	Cyc   int64
	Stats Stats

	launch      *Launch
	kern        *compiledKernel
	hooks       *Hooks
	blocksPerSM int
	nextBlock   int
	blocksDone  int
	ageSeq      int64

	// MaxCycles bounds a run (deadlock/livelock detection).
	MaxCycles int64
}

// NewDevice creates a device with the given configuration and global
// memory size in bytes.
func NewDevice(cfg Config, memBytes int) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Cfg:       cfg,
		Mem:       NewGlobalMem(memBytes),
		l2:        newCache(cfg.L2Sets, cfg.L2Ways, cfg.LineBytes),
		MaxCycles: 200_000_000,
	}
	for i := 0; i < cfg.NumSMs; i++ {
		d.SMs = append(d.SMs, newSM(i, d))
	}
	return d, nil
}

// Launch returns the launch currently running (nil outside Run).
func (d *Device) Launch() *Launch { return d.launch }

// Kernel returns the compiled kernel of the current launch.
func (d *Device) Kernel() *isa.Program { return d.launch.Prog }

// Cycle returns the current simulation cycle.
func (d *Device) Cycle() int64 { return d.Cyc }

// Run simulates one kernel launch to completion and returns its stats.
// Hooks may be nil. Global memory contents persist across runs (host
// code initializes and validates them via Mem).
func (d *Device) Run(l *Launch, hooks *Hooks) (*Stats, error) {
	if err := l.Validate(&d.Cfg); err != nil {
		return nil, err
	}
	d.launch = l
	d.kern = compileKernel(l.Prog)
	d.hooks = hooks
	d.Stats = Stats{}
	d.Cyc = 0
	d.nextBlock = 0
	d.blocksDone = 0
	d.ageSeq = 0
	d.blocksPerSM = l.BlocksPerSM(&d.Cfg)
	if d.blocksPerSM == 0 {
		return nil, fmt.Errorf("gpu: kernel %q does not fit on an SM (regs=%d shared=%dB)",
			l.Prog.Name, l.Prog.NumRegs, l.Prog.SharedBytes)
	}

	// Reset per-run microarchitectural state.
	for _, sm := range d.SMs {
		sm.Warps = sm.Warps[:0]
		sm.Blocks = sm.Blocks[:0]
		sm.liveWarps = 0
		sm.lsuBusyUntil = 0
		sm.sfuBusyUntil = 0
		sm.dramFree = 0
		sm.l2Free = 0
		sm.mshrRelease = sm.mshrRelease[:0]
		sm.l1.reset()
		for i := range sm.scheds {
			sm.scheds[i] = newScheduler(d.Cfg.Scheduler, d.Cfg.TwoLevelGroup)
		}
	}
	d.l2.reset()

	// Initial block dispatch, round-robin over SMs.
	for _, sm := range d.SMs {
		sm.dispatch()
	}

	budget := d.MaxCycles
	if l.MaxCycles > 0 {
		budget = l.MaxCycles
	}
	total := l.Grid.Count()
	for d.blocksDone < total {
		if d.Cyc >= budget {
			return nil, fmt.Errorf("gpu: %q: %w after %d cycles; %d/%d blocks done",
				l.Prog.Name, ErrCycleLimit, budget, d.blocksDone, total)
		}
		for _, sm := range d.SMs {
			if err := sm.step(d.Cyc); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", d.Cyc, err)
			}
		}
		d.hooks.onCycle(d)
		d.Cyc++
	}
	d.Stats.Cycles = d.Cyc
	return &d.Stats, nil
}

// WarpsOfBlock returns the live warps of a block slot on an SM.
func (sm *SM) WarpsOfBlock(b *BlockState) []*Warp {
	out := make([]*Warp, 0, len(b.WarpIdx))
	for _, wi := range b.WarpIdx {
		if w := sm.Warps[wi]; w != nil {
			out = append(out, w)
		}
	}
	return out
}
