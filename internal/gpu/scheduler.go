package gpu

// scheduler picks which ready warp a scheduler slot issues each cycle.
// Implementations receive the warps they manage (their partition) and the
// indices of currently-ready warps, and return the chosen index into the
// partition (or -1).
type scheduler interface {
	pick(warps []*Warp, ready []int, cycle int64) int
	// stalled informs the policy that its greedy/active warp stalled.
	reset()
}

func newScheduler(kind SchedulerKind, groupSize int) scheduler {
	switch kind {
	case LRR:
		return &lrrSched{}
	case OLD:
		return &oldSched{}
	case TwoLevel:
		return &twoLevelSched{group: groupSize}
	default:
		return &gtoSched{current: -1}
	}
}

// gtoSched: greedy-then-oldest. Keep issuing the same warp until it
// stalls; then switch to the oldest ready warp.
type gtoSched struct {
	current int // warp index currently run greedily, -1 if none
}

func (s *gtoSched) pick(warps []*Warp, ready []int, cycle int64) int {
	for _, i := range ready {
		if i == s.current {
			return i
		}
	}
	// Greedy warp stalled: pick the oldest ready warp.
	best := -1
	var bestAge int64
	for _, i := range ready {
		if best == -1 || warps[i].Age < bestAge {
			best, bestAge = i, warps[i].Age
		}
	}
	s.current = best
	return best
}

func (s *gtoSched) reset() { s.current = -1 }

// oldSched: always the oldest ready warp.
type oldSched struct{}

func (oldSched) pick(warps []*Warp, ready []int, cycle int64) int {
	best := -1
	var bestAge int64
	for _, i := range ready {
		if best == -1 || warps[i].Age < bestAge {
			best, bestAge = i, warps[i].Age
		}
	}
	return best
}

func (oldSched) reset() {}

// lrrSched: loose round-robin over ready warps.
type lrrSched struct {
	last int
}

func (s *lrrSched) pick(warps []*Warp, ready []int, cycle int64) int {
	if len(ready) == 0 {
		return -1
	}
	best := -1
	// The smallest index strictly greater than last, wrapping around.
	for _, i := range ready {
		if i > s.last && (best == -1 || i < best) {
			best = i
		}
	}
	if best == -1 {
		for _, i := range ready {
			if best == -1 || i < best {
				best = i
			}
		}
	}
	s.last = best
	return best
}

func (s *lrrSched) reset() {}

// twoLevelSched: a small active set scheduled round-robin; warps that
// stall are swapped out for pending warps.
type twoLevelSched struct {
	group  int
	active []int
	rr     int
}

func (s *twoLevelSched) pick(warps []*Warp, ready []int, cycle int64) int {
	if s.group <= 0 {
		s.group = 8
	}
	readySet := map[int]bool{}
	for _, i := range ready {
		readySet[i] = true
	}
	// Drop finished or stalled-too-long warps from the active set.
	keep := s.active[:0]
	for _, i := range s.active {
		if i < len(warps) && !warps[i].Finished && (readySet[i] || cycle-warps[i].LastIssue < 8) {
			keep = append(keep, i)
		}
	}
	s.active = keep
	// Refill from ready warps not in the set, oldest first.
	for len(s.active) < s.group {
		best := -1
		var bestAge int64
		for _, i := range ready {
			inSet := false
			for _, a := range s.active {
				if a == i {
					inSet = true
					break
				}
			}
			if inSet {
				continue
			}
			if best == -1 || warps[i].Age < bestAge {
				best, bestAge = i, warps[i].Age
			}
		}
		if best == -1 {
			break
		}
		s.active = append(s.active, best)
	}
	if len(s.active) == 0 {
		return -1
	}
	// Round-robin within the active set.
	for k := 1; k <= len(s.active); k++ {
		cand := s.active[(s.rr+k)%len(s.active)]
		if readySet[cand] {
			s.rr = (s.rr + k) % len(s.active)
			return cand
		}
	}
	return -1
}

func (s *twoLevelSched) reset() { s.active = s.active[:0] }
