package bench

// SHOC: STREAM Triad and GUPS (random global updates).

// Triad: a[i] = b[i] + s*c[i]. Pure streaming, DRAM-bandwidth-bound.
var Triad = register(&Benchmark{
	Name:        "Triad",
	Suite:       "SHOC",
	Description: "STREAM triad a[i] = b[i] + s*c[i]",
	Src: `
    mov r0, %tid.x
    mov r1, %ctaid.x
    mov r2, %ntid.x
    mad r3, r1, r2, r0
    shl r4, r3, 2
    ld.param r5, [0]
    ld.param r6, [4]
    ld.param r7, [8]
    ld.param r8, [12]
    add r9, r5, r4
    ld.global r10, [r9]
    add r11, r6, r4
    ld.global r12, [r11]
    fma r13, r12, r8, r10
    add r14, r7, r4
    st.global [r14], r13
    exit
`,
	Grid:     d3(32, 1, 1),
	Block:    d3(256, 1, 1),
	MemBytes: 1 << 18,
	Params:   []uint32{0, triadN * 4, triadN * 8, f(1.75)},
	Setup: func(mem []uint32) {
		r := lcg(1)
		for i := 0; i < triadN; i++ {
			mem[i] = f(r.unitFloat())
			mem[triadN+i] = f(r.unitFloat())
		}
	},
	Validate: func(mem []uint32) error {
		r := lcg(1)
		for i := 0; i < triadN; i++ {
			b := r.unitFloat()
			c := r.unitFloat()
			if err := expectF32(mem, 2*triadN+i, fmaf(c, 1.75, b), "a"); err != nil {
				return err
			}
		}
		return nil
	},
})

const triadN = 32 * 256

// GUPS: giga-updates per second — random atomic XOR updates into a table.
var GUPS = register(&Benchmark{
	Name:        "GUPS",
	Suite:       "SHOC",
	Description: "random global table updates via atomic XOR",
	Src: `
    mov r0, %tid.x
    mov r1, %ctaid.x
    mov r2, %ntid.x
    mad r3, r1, r2, r0
    ld.param r5, [0]
    ld.param r6, [4]
    mul r7, r3, 40503
    xor r7, r7, r3
    and r8, r7, r6
    shl r9, r8, 2
    add r10, r5, r9
    atom.global.xor r11, [r10], r3
    exit
`,
	Grid:     d3(32, 1, 1),
	Block:    d3(256, 1, 1),
	MemBytes: 1 << 16,
	Params:   []uint32{0, gupsTable - 1},
	Setup:    func(mem []uint32) {},
	Validate: func(mem []uint32) error {
		want := make([]uint32, gupsTable)
		for i := uint32(0); i < 32*256; i++ {
			h := (i*40503 ^ i) & (gupsTable - 1)
			want[h] ^= i
		}
		for j := 0; j < gupsTable; j++ {
			if err := expectU32(mem, j, want[j], "table"); err != nil {
				return err
			}
		}
		return nil
	},
})

const gupsTable = 4096
