package core

import (
	"testing"
)

// benchTrial measures one end-to-end injection trial — strike, full
// simulation under the Flame scheme, golden diff, classification —
// using run(i) as the trial executor.
func benchTrial(b *testing.B, run func(g *Golden, ts TrialSpec) *TrialResult) {
	b.Helper()
	cfg := testCfg()
	g, err := GoldenRun(cfg, saxpySpecCached, FlameOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := TrialSpec{
			Arms:      []int64{(int64(i) * g.Window) / 97 % g.Window},
			Seed:      int64(i)*2654435761 + 17,
			MaxCycles: g.HangBudget(0),
		}
		if res := run(g, ts); res == nil {
			b.Fatal("nil trial result")
		}
	}
}

// BenchmarkCampaignTrial is what a campaign worker does per trial: an
// injection trial on a pooled Engine (device reuse, golden-snapshot
// memory restore, shared compilation). allocs/op here is the
// allocs/trial figure EXPERIMENTS.md tracks.
func BenchmarkCampaignTrial(b *testing.B) {
	var eng *Engine
	benchTrial(b, func(g *Golden, ts TrialSpec) *TrialResult {
		if eng == nil {
			eng = NewEngine(testCfg())
		}
		return eng.RunTrial(saxpySpecCached, g, ts)
	})
}

// BenchmarkCampaignTrialFresh is the same trial without pooling: a
// fresh device, controller and memory image per trial, as the engine
// worked before device reuse. Kept as the before/after reference.
func BenchmarkCampaignTrialFresh(b *testing.B) {
	benchTrial(b, func(g *Golden, ts TrialSpec) *TrialResult {
		return RunTrial(testCfg(), saxpySpecCached, g, ts)
	})
}

// saxpySpecCached keeps one spec pointer across benchmark iterations so
// the Engine's per-spec device cache actually hits, as it does for a
// campaign worker holding the campaign's spec slice.
var saxpySpecCached = saxpySpec()
