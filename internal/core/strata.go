package core

import (
	"fmt"

	"flame/internal/flame"
	"flame/internal/gpu"
)

// BuildStrata enumerates the single-strike injection-site space of a
// golden run into (kernel, section, opcode-class) strata with exact
// site counts. It replays the fault-free run once with a recording hook
// combined after the scheme's own hooks — the recorder therefore sees
// the executed-instruction stream in exactly the order a trial's
// injector observes it — and feeds the main kernel's corruptible events
// to a flame.StrataBuilder.
//
// The replay must be bit-identical to the golden run, so the recorder
// only watches; a mismatch between the replay's cycle count and
// g.Window is reported as an error rather than silently mis-weighting
// strata.
func BuildStrata(cfg gpu.Config, spec *KernelSpec, g *Golden, model flame.FaultModel) (*flame.StrataMap, error) {
	sections := make([][2]int, len(g.Comp.Sections))
	for i, s := range g.Comp.Sections {
		sections[i] = [2]int{s.Start, s.End}
	}
	b := flame.NewStrataBuilder(g.Comp.Prog, spec.Name, sections, model, g.ArmSpan())
	return buildStrata(cfg, spec, g, b)
}

func buildStrata(cfg gpu.Config, spec *KernelSpec, g *Golden, b *flame.StrataBuilder) (*flame.StrataMap, error) {
	main := g.Comp.Prog
	recorder := &gpu.Hooks{OnExecuted: func(d *gpu.Device, sm *gpu.SM, w *gpu.Warp, pc int) {
		// The injector attaches to the main kernel's launch only, and the
		// device clock restarts per launch — record nothing else.
		if d.Kernel() != main {
			return
		}
		// Mirror Injector.pickLane's liveness gate: an event with no
		// executing lane holding live registers never fires a strike (the
		// injector stays armed through it), so it owns no arm cycles.
		mask := w.LastExecMask()
		live := false
		for l := 0; l < len(w.Regs); l++ {
			if mask&(1<<l) != 0 && w.Regs[l] != nil {
				live = true
				break
			}
		}
		if !live {
			return
		}
		b.Observe(d.Cyc, pc)
	}}
	res, err := RunCompiledOpts(cfg, spec, g.Comp, nil, RunOpts{
		SkipValidate: true,
		Hooks:        recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("strata replay: %w", err)
	}
	if res.Stats.Cycles != g.Window {
		return nil, fmt.Errorf("strata replay diverged: %d cycles, golden window %d",
			res.Stats.Cycles, g.Window)
	}
	return b.Finish(), nil
}

// ArmSpan is the single-strike arm-cycle space size: arms are drawn
// uniformly from [0, ArmSpan()). Defined on Golden so the uniform
// campaign's trial derivation and the stratified enumeration cannot
// drift apart.
func (g *Golden) ArmSpan() int64 { return g.Window*9/10 + 1 }
