package sensor

import (
	"testing"
	"testing/quick"
)

func TestGTX480CalibrationPoints(t *testing.T) {
	// Figure 12 / Section VI-A1: 50-300 sensors give ~50-15 cycles, with
	// 200 sensors at exactly 20 cycles of WCDL on GTX480.
	cases := []struct{ sensors, wcdl int }{
		{50, 50}, {200, 20}, {300, 15},
	}
	for _, c := range cases {
		d := Deployment{SensorsPerSM: c.sensors, SMAreaMM2: 17.5, FreqMHz: 700}
		if got := d.WCDL(); got != c.wcdl {
			t.Errorf("GTX480 %d sensors: WCDL=%d, want %d", c.sensors, got, c.wcdl)
		}
	}
}

func TestTableIISensorCounts(t *testing.T) {
	// Table II: sensors per SM required for 20-cycle WCDL.
	want := map[string]int{"GTX480": 200, "RTX2060": 248, "GV100": 128, "TITANX": 260}
	for _, spec := range Specs {
		n, err := SensorsFor(20, spec.SMAreaMM2, spec.FreqMHz)
		if err != nil {
			t.Fatal(err)
		}
		w := want[spec.Name]
		// Allow ±2% slack from the back-derived areas.
		if n < w-5 || n > w+5 {
			t.Errorf("%s: sensors for 20 cycles = %d, want ≈%d", spec.Name, n, w)
		}
	}
}

func TestAreaOverheadUnderTenth(t *testing.T) {
	// Table II: area overhead < 0.1% for all four architectures.
	for _, spec := range Specs {
		n, err := SensorsFor(20, spec.SMAreaMM2, spec.FreqMHz)
		if err != nil {
			t.Fatal(err)
		}
		d := Deployment{SensorsPerSM: n, SMAreaMM2: spec.SMAreaMM2, FreqMHz: spec.FreqMHz}
		if ov := d.AreaOverhead(); ov >= 0.001 {
			t.Errorf("%s: area overhead %.4f%% >= 0.1%%", spec.Name, ov*100)
		}
	}
}

func TestWCDLMonotonicInSensors(t *testing.T) {
	if err := quick.Check(func(s uint16) bool {
		n := int(s%2000) + 1
		a := Deployment{SensorsPerSM: n, SMAreaMM2: 17.5, FreqMHz: 700}.WCDL()
		b := Deployment{SensorsPerSM: n + 1, SMAreaMM2: 17.5, FreqMHz: 700}.WCDL()
		return b <= a && a >= 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSensorsForInvertsWCDL(t *testing.T) {
	for wcdl := 10; wcdl <= 50; wcdl += 10 {
		n, err := SensorsFor(wcdl, 17.5, 700)
		if err != nil {
			t.Fatal(err)
		}
		d := Deployment{SensorsPerSM: n, SMAreaMM2: 17.5, FreqMHz: 700}
		if d.WCDL() > wcdl {
			t.Errorf("SensorsFor(%d)=%d but WCDL=%d", wcdl, n, d.WCDL())
		}
		if n > 1 {
			d.SensorsPerSM = n - 1
			if d.WCDL() <= wcdl {
				t.Errorf("SensorsFor(%d)=%d not minimal", wcdl, n)
			}
		}
	}
}

func TestCurveShape(t *testing.T) {
	spec, err := SpecByName("GTX480")
	if err != nil {
		t.Fatal(err)
	}
	pts := Curve(spec, 50, 300, 50)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].WCDL > pts[i-1].WCDL {
			t.Fatalf("curve not monotone: %+v", pts)
		}
	}
	if pts[0].WCDL != 50 || pts[len(pts)-1].WCDL != 15 {
		t.Fatalf("endpoints: %+v", pts)
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := SpecByName("H100"); err == nil {
		t.Fatal("expected error for unknown GPU")
	}
}
