package dist

import "net/http"

// The live dashboard is one self-contained HTML page (no external
// assets, no build step) served at GET /dashboard when
// CoordConfig.Dashboard is set. Everything it shows comes from the two
// read-only endpoints the coordinator already serves: /v1/status (JSON)
// and /metrics (Prometheus text) — the page polls both every two
// seconds and renders the shard map, per-benchmark CI convergence, and
// the propagation-fingerprint summary client-side. Keeping the server
// side to a constant string means the dashboard can never perturb the
// campaign: it holds no locks and touches no coordinator state.

func handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>flame campaign</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.2em auto; max-width: 72em; padding: 0 1em;
         background: #111418; color: #d8dee4; }
  h1 { font-size: 1.1em; } h2 { font-size: 0.95em; margin: 1.4em 0 0.4em; color: #9fb3c8; }
  .bar { height: 10px; background: #2a3038; border-radius: 5px; overflow: hidden; }
  .bar > div { height: 100%; background: #4c9e57; transition: width 0.5s; }
  .grid { display: flex; flex-wrap: wrap; gap: 3px; }
  .cell { width: 16px; height: 16px; border-radius: 3px; background: #2a3038; }
  .cell.pending     { background: #3b4352; }
  .cell.leased      { background: #c9a227; }
  .cell.done        { background: #4c9e57; }
  .cell.quarantined { background: #c84c4c; }
  .cell.cancelled   { background: #6f5fa8; }
  table { border-collapse: collapse; }
  td, th { padding: 2px 10px 2px 0; text-align: left; font-weight: normal; }
  th { color: #7d8590; }
  .muted { color: #7d8590; } .bad { color: #e5534b; } .ok { color: #57ab5a; }
  #err { color: #e5534b; }
</style>
</head>
<body>
<h1>flame campaign <span id="state" class="muted"></span></h1>
<div id="err"></div>
<div class="bar"><div id="prog" style="width:0"></div></div>
<div class="muted" id="progtext"></div>

<h2>shards <span class="muted">(hover for detail)</span></h2>
<div class="grid" id="shards"></div>

<h2>outcomes</h2>
<table id="tallies"></table>

<h2>benchmark convergence <span class="muted">(Wilson 95% half-widths)</span></h2>
<table id="benches"></table>

<h2>propagation <span class="muted">(traced campaigns only)</span></h2>
<table id="prop"></table>

<h2>workers</h2>
<div id="workers"></div>

<script>
"use strict";
// parseMetrics turns Prometheus text into {name -> [{labels, value}]}.
function parseMetrics(text) {
  const out = {};
  for (const line of text.split("\n")) {
    if (!line || line.startsWith("#")) continue;
    const m = line.match(/^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (.*)$/);
    if (!m) continue;
    const labels = {};
    if (m[3]) for (const kv of m[3].match(/[a-zA-Z_]+="(?:[^"\\]|\\.)*"/g) || []) {
      const i = kv.indexOf("=");
      labels[kv.slice(0, i)] = kv.slice(i + 2, -1).replace(/\\(.)/g, "$1");
    }
    (out[m[1]] = out[m[1]] || []).push({ labels, value: parseFloat(m[4]) });
  }
  return out;
}
const fmt = (v, d) => Number(v).toFixed(d === undefined ? 0 : d);
const esc = s => String(s).replace(/[&<>"]/g, c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

function renderStatus(st) {
  const done = st.done_trials, total = st.total_trials;
  document.getElementById("prog").style.width = total ? (100 * done / total) + "%" : "0";
  document.getElementById("progtext").textContent =
    done + " / " + total + " trials · " + fmt(st.elapsed_sec) + "s elapsed" +
    " · coverage " + fmt(100 * st.coverage, 2) + "% [" +
    fmt(100 * st.coverage_lo, 2) + ", " + fmt(100 * st.coverage_hi, 2) + "]";
  document.getElementById("state").textContent =
    st.complete ? "— complete" : st.degraded ? "— DEGRADED" : "— running";

  const grid = document.getElementById("shards");
  grid.textContent = "";
  for (const s of st.shards || []) {
    const c = document.createElement("div");
    c.className = "cell " + s.state;
    let tip = "shard " + s.shard.id + ": " + s.shard.bench +
      "[" + s.shard.lo + "," + s.shard.hi + ") — " + s.state +
      ", " + s.done + "/" + (s.shard.hi - s.shard.lo) + " on disk";
    if (s.worker) tip += ", worker " + s.worker;
    if (s.lease_age_sec) tip += ", lease age " + fmt(s.lease_age_sec, 1) + "s";
    if (s.retries) tip += ", retries " + s.retries;
    c.title = tip;
    grid.appendChild(c);
  }

  let rows = "";
  for (const o of Object.keys(st.tallies || {}).sort())
    rows += "<tr><td>" + esc(o) + "</td><td>" + st.tallies[o] + "</td></tr>";
  document.getElementById("tallies").innerHTML = rows || "<tr><td class=muted>no trials yet</td></tr>";

  let wk = (st.workers || []).map(esc).join(", ") || "<span class=muted>none</span>";
  if ((st.banned_workers || []).length)
    wk += ' · <span class="bad">banned: ' + st.banned_workers.map(esc).join(", ") + "</span>";
  document.getElementById("workers").innerHTML = wk;
}

function renderMetrics(ms) {
  const by = (fam, key) => {
    const m = {};
    for (const s of ms[fam] || []) m[s.labels[key] + "|" + (s.labels.rate || "")] = s.value;
    return m;
  };
  const inj = by("flame_bench_injected_total", "bench"),
        sdc = by("flame_bench_sdc_total", "bench"),
        due = by("flame_bench_due_total", "bench"),
        ci  = by("flame_bench_ci_halfwidth", "bench"),
        stop = by("flame_bench_early_stopped", "bench");
  let rows = "<tr><th>bench</th><th>injected</th><th>sdc</th><th>due</th>" +
             "<th>±sdc</th><th>±due</th><th></th></tr>";
  for (const k of Object.keys(inj).sort()) {
    const b = k.split("|")[0];
    rows += "<tr><td>" + esc(b) + "</td><td>" + inj[k] + "</td><td>" + (sdc[k] || 0) +
      "</td><td>" + (due[k] || 0) + "</td><td>" +
      (ci[b + "|sdc"] !== undefined ? fmt(ci[b + "|sdc"], 4) : "—") + "</td><td>" +
      (ci[b + "|due"] !== undefined ? fmt(ci[b + "|due"], 4) : "—") + "</td><td>" +
      (stop[k] ? '<span class="ok">converged</span>' : "") + "</td></tr>";
  }
  document.getElementById("benches").innerHTML = rows;

  const traced = (ms["flame_propagation_traced_total"] || [])[0],
        reached = (ms["flame_propagation_store_reached_total"] || [])[0],
        distinct = (ms["flame_propagation_fingerprints_distinct"] || [])[0];
  let prows = "";
  if (traced) {
    prows += "<tr><td>traced trials</td><td>" + traced.value + "</td></tr>" +
      "<tr><td>reached a store</td><td>" + (reached ? reached.value : 0) + "</td></tr>" +
      "<tr><td>distinct fingerprints</td><td>" + (distinct ? distinct.value : 0) + "</td></tr>";
    for (const s of ms["flame_propagation_fingerprint_total"] || [])
      prows += '<tr><td class="muted">' + esc(s.labels.fingerprint) + "</td><td>" + s.value + "</td></tr>";
  } else {
    prows = '<tr><td class="muted">not a traced campaign (run with -fingerprint)</td></tr>';
  }
  document.getElementById("prop").innerHTML = prows;
}

async function tick() {
  try {
    const [st, mt] = await Promise.all([
      fetch("/v1/status").then(r => r.json()),
      fetch("/metrics").then(r => r.text()),
    ]);
    renderStatus(st);
    renderMetrics(parseMetrics(mt));
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = "poll failed: " + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
