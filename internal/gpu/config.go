// Package gpu implements a cycle-level SIMT GPU simulator — the
// GPGPU-Sim substitute the evaluation runs on. It models streaming
// multiprocessors with configurable warp schedulers (GTO, LRR, OLD,
// Two-Level), per-warp scoreboards, IPDOM-stack branch divergence, a
// coalescing L1/L2/DRAM memory hierarchy, banked shared memory,
// generation-counted block barriers, atomics, and occupancy-limited block
// dispatch. Resilience schemes attach through the Hooks interface without
// the simulator knowing about them.
package gpu

import "fmt"

// SchedulerKind selects the warp scheduling policy (Section VI-B3).
type SchedulerKind uint8

// Warp scheduler policies.
const (
	// GTO (greedy-then-oldest) runs a single warp until it stalls, then
	// picks the oldest ready warp. GPGPU-Sim v4.0's default.
	GTO SchedulerKind = iota
	// LRR (loose round-robin) rotates over ready warps each cycle.
	LRR
	// OLD always picks the oldest ready warp.
	OLD
	// TwoLevel keeps a small active set scheduled LRR, swapping out
	// warps that stall on long-latency operations.
	TwoLevel
)

// String returns the scheduler's name as used in the paper.
func (s SchedulerKind) String() string {
	switch s {
	case GTO:
		return "GTO"
	case LRR:
		return "LRR"
	case OLD:
		return "OLD"
	case TwoLevel:
		return "2-Level"
	}
	return fmt.Sprintf("sched(%d)", uint8(s))
}

// Config describes a GPU architecture.
type Config struct {
	Name    string
	FreqMHz float64
	// SMLogicAreaMM2 is the per-SM logic area the sensor mesh must cover.
	SMLogicAreaMM2 float64

	NumSMs          int
	WarpSize        int
	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	RegistersPerSM  int
	SharedMemPerSM  int
	SchedulersPerSM int
	Scheduler       SchedulerKind
	// TwoLevelGroup is the active-set size of the two-level scheduler.
	TwoLevelGroup int

	// Latencies, in core cycles.
	ALULat    int
	SFULat    int
	SharedLat int
	L1Lat     int
	L2Lat     int
	DRAMLat   int

	// L1 data cache geometry (per SM).
	L1Sets, L1Ways, LineBytes int
	// L2 geometry (device-wide).
	L2Sets, L2Ways int
	// MSHRs bounds outstanding L1 misses per SM.
	MSHRs int
	// SharedBanks is the number of shared-memory banks.
	SharedBanks int
	// DRAMCyclesPerLine is each SM's share of DRAM bandwidth, expressed
	// as service cycles per cache line (total BW / SM count). Memory-
	// bound kernels become bandwidth-limited through this, which is what
	// lets latecomer latencies (including WCDL waits) hide.
	DRAMCyclesPerLine int
	// L2CyclesPerLine is the SM's share of L2 bandwidth.
	L2CyclesPerLine int

	// NoCycleSkip disables event-driven fast-forwarding of fully-stalled
	// cycles and steps the naive per-cycle loop instead. Skipping is
	// bit-identical in every reported statistic (the equivalence suite
	// asserts it), so this exists for A/B validation and benchmarking,
	// not correctness.
	NoCycleSkip bool
}

// GTX480 returns the paper's default architecture (Fermi).
func GTX480() Config {
	return Config{
		Name: "GTX480", FreqMHz: 700, SMLogicAreaMM2: 17.5,
		NumSMs: 16, WarpSize: 32, MaxWarpsPerSM: 48, MaxBlocksPerSM: 8,
		RegistersPerSM: 32768, SharedMemPerSM: 48 << 10,
		SchedulersPerSM: 2, Scheduler: GTO, TwoLevelGroup: 8,
		ALULat: 4, SFULat: 16, SharedLat: 24, L1Lat: 30, L2Lat: 180, DRAMLat: 440,
		L1Sets: 32, L1Ways: 4, LineBytes: 128,
		L2Sets: 512, L2Ways: 8, MSHRs: 32, SharedBanks: 32,
		DRAMCyclesPerLine: 8, L2CyclesPerLine: 4,
	}
}

// TITANX returns the Maxwell-class configuration.
func TITANX() Config {
	c := GTX480()
	c.Name, c.FreqMHz, c.SMLogicAreaMM2 = "TITANX", 1000, 11.30
	c.NumSMs, c.MaxWarpsPerSM, c.MaxBlocksPerSM = 24, 64, 16
	c.RegistersPerSM, c.SharedMemPerSM = 65536, 96<<10
	c.SchedulersPerSM = 4
	c.ALULat, c.SFULat, c.SharedLat = 4, 14, 22
	c.L1Lat, c.L2Lat, c.DRAMLat = 28, 170, 400
	c.L1Sets, c.L2Sets = 48, 1024
	c.DRAMCyclesPerLine, c.L2CyclesPerLine = 9, 4
	return c
}

// GV100 returns the Volta-class configuration.
func GV100() Config {
	c := GTX480()
	c.Name, c.FreqMHz, c.SMLogicAreaMM2 = "GV100", 1136, 4.30
	c.NumSMs, c.MaxWarpsPerSM, c.MaxBlocksPerSM = 80, 64, 32
	c.RegistersPerSM, c.SharedMemPerSM = 65536, 96<<10
	c.SchedulersPerSM = 4
	c.ALULat, c.SFULat, c.SharedLat = 4, 12, 19
	c.L1Lat, c.L2Lat, c.DRAMLat = 26, 160, 380
	c.L1Sets, c.L2Sets = 64, 2048
	c.DRAMCyclesPerLine, c.L2CyclesPerLine = 13, 5
	return c
}

// RTX2060 returns the Turing-class configuration (the newest GPGPU-Sim
// v4.0 supports).
func RTX2060() Config {
	c := GTX480()
	c.Name, c.FreqMHz, c.SMLogicAreaMM2 = "RTX2060", 1365, 5.78
	c.NumSMs, c.MaxWarpsPerSM, c.MaxBlocksPerSM = 30, 32, 16
	c.RegistersPerSM, c.SharedMemPerSM = 65536, 64<<10
	c.SchedulersPerSM = 4
	c.ALULat, c.SFULat, c.SharedLat = 4, 12, 19
	c.L1Lat, c.L2Lat, c.DRAMLat = 25, 150, 360
	c.L1Sets, c.L2Sets = 64, 1024
	c.DRAMCyclesPerLine, c.L2CyclesPerLine = 16, 6
	return c
}

// ConfigByName returns a named architecture configuration.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "GTX480":
		return GTX480(), nil
	case "TITANX":
		return TITANX(), nil
	case "GV100":
		return GV100(), nil
	case "RTX2060":
		return RTX2060(), nil
	}
	return Config{}, fmt.Errorf("gpu: unknown architecture %q", name)
}

// Architectures lists the four evaluated configurations.
func Architectures() []Config {
	return []Config{GTX480(), TITANX(), GV100(), RTX2060()}
}

// Validate checks configuration sanity.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs <= 0 || c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("gpu: bad SM/warp geometry")
	case c.MaxWarpsPerSM <= 0 || c.MaxBlocksPerSM <= 0:
		return fmt.Errorf("gpu: bad occupancy limits")
	case c.SchedulersPerSM <= 0:
		return fmt.Errorf("gpu: need at least one scheduler")
	case c.LineBytes < 4 || c.LineBytes%4 != 0:
		return fmt.Errorf("gpu: bad cache line size")
	}
	return nil
}
