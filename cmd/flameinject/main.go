// Command flameinject runs a statistical fault-injection campaign:
// thousands of classified injection trials across a benchmark suite,
// executed on a pool of workers, reported as per-benchmark and
// fleet-wide coverage rates with Wilson 95% confidence intervals. The
// report is bit-identical for a given seed regardless of -parallel.
//
// Usage:
//
//	flameinject -trials 1000 -parallel 8
//	flameinject -bench SGEMM,LUD -scheme flame -model full -json report.json
//	flameinject -suite quick -trials 125 -strikes 2
//	flameinject -trials 200 -events campaign.jsonl
//	flameinject -trials 200 -events campaign.jsonl -resume   # continue an interrupted run
//	flameinject -serve :8077 -state dir                      # distributed: coordinator
//	flameinject -join http://host:8077                       # distributed: worker
//
// SIGINT/SIGTERM stops gracefully: in-flight trials finish, the event
// stream is flushed, and the partial report is printed; with -events
// the run is resumable via -resume. Exit codes: 0 clean; 1 error; 2
// uncovered outcomes under the paper's fault model; 3 interrupted
// (partial, resumable).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"flame/internal/bench"
	"flame/internal/campaign"
	"flame/internal/core"
	"flame/internal/dist"
	"flame/internal/flame"
	"flame/internal/gpu"
	"flame/internal/prof"
	"flame/internal/stats"
)

// quickSuite is a small structurally-diverse subset for fast campaigns:
// regular streaming, blocked reuse with barriers, atomics, divergence,
// extended-section and multi-kernel workloads.
var quickSuite = []string{
	"Triad", "SGEMM", "Histogram", "BFS",
	"LUD", "NW", "PF", "SRAD",
}

func main() {
	benchList := flag.String("bench", "", "comma-separated benchmark names (default: -suite)")
	suite := flag.String("suite", "quick", "benchmark suite: quick (8 diverse workloads) or all")
	schemeFlag := flag.String("scheme", "flame", "resilience scheme (see -h of flamecc)")
	archName := flag.String("arch", "GTX480", "GPU architecture: GTX480, TITANX, GV100, RTX2060")
	wcdl := flag.Int("wcdl", 20, "sensor WCDL (cycles)")
	extend := flag.Bool("extend", true, "enable region extension")
	trials := flag.Int("trials", 100, "injection trials per benchmark")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS); does not affect the report")
	seed := flag.Uint64("seed", 1, "campaign seed (report is a pure function of config+seed)")
	modelFlag := flag.String("model", "data", "fault model: data (paper's data slice) or full (full site incl. address/control)")
	strikes := flag.Int("strikes", 1, "strikes armed per trial")
	budget := flag.Int64("budget", 8, "hang watchdog: cycle budget as multiple of the fault-free window")
	trialTimeout := flag.Duration("trial-timeout", 0, "wall-clock watchdog per trial, e.g. 30s (0 = off); timeouts classify as hangs")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	events := flag.String("events", "", "stream JSONL progress events to this file (- for stderr); replayable with campaign.Replay")
	resume := flag.Bool("resume", false, "with -events FILE: skip trials already classified in FILE, append new ones, report the union")
	serve := flag.String("serve", "", "run as distributed coordinator on this address (see flameserve)")
	state := flag.String("state", "flameinject-state", "with -serve: state directory for checkpoint + shard streams")
	dashboard := flag.Bool("dashboard", false, "with -serve: serve the live HTML dashboard at GET /dashboard")
	join := flag.String("join", "", "run as distributed worker against this coordinator URL (see flameworker)")
	metricsAddr := flag.String("metrics-addr", "", "with -join: serve this worker's Prometheus /metrics on this address (e.g. :9090)")
	fingerprint := flag.Bool("fingerprint", false, "trace strike propagation per trial: cycle depth to first corrupted store, detection latency, SDC corruption fingerprints (outcomes and exit codes unchanged)")
	stratify := flag.Bool("stratify", false, "stratified importance sampling over (kernel, section, opcode-class) strata instead of the uniform site grid")
	ciTarget := flag.Float64("ci-target", 0, "adaptive early stop: halt a benchmark once both its SDC and DUE Wilson 95% half-widths reach this target (0 = off; needs -stratify or -serve)")
	pilot := flag.Int("pilot", 0, "with -stratify: uniform pilot trials per stratum in round 0 (0 = default)")
	strataKey := flag.String("strata-key", "", "with -stratify or -list-strata: stratification key, section-class (default) or liveness (adds the static dead/short/long/store site-class dimension)")
	audit := flag.Bool("audit", false, "with -stratify: rerun the uniform grid at the same budget and require the stratified estimates to fall inside its Wilson CIs (exit 1 on failure)")
	listStrata := flag.Bool("list-strata", false, "enumerate the injection-site strata per benchmark (sites, weights) and exit without running trials")
	noskip := flag.Bool("noskip", false, "disable event-driven cycle skipping (naive per-cycle loop)")
	prune := flag.Bool("prune", false, "pre-classify provably-masked trials without simulation (bit-identical results; reported as pruned_masked)")
	noCOW := flag.Bool("no-cow", false, "disable page-granular golden restore/diff (full copy + full scan per trial; results are byte-identical)")
	profileRestore := flag.Bool("profile-restore", false, "one-shot: per-benchmark restore/diff/prune profile table instead of a campaign report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Distributed worker mode: everything about the campaign comes from
	// the coordinator; local campaign flags are ignored.
	if *join != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		err := dist.RunWorker(ctx, dist.WorkerConfig{URL: *join, MetricsAddr: *metricsAddr, Logf: logf})
		switch {
		case err == nil:
			return
		case errors.Is(err, context.Canceled):
			logf("interrupted; streamed trials are preserved at the coordinator")
			os.Exit(3)
		default:
			fail("%v", err)
		}
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail("%v", err)
	}
	defer stopProf()

	scheme, err := core.SchemeByName(*schemeFlag)
	if err != nil {
		fail("%v (want one of %s)", err, strings.Join(core.SchemeFlagNames(), ", "))
	}
	arch, err := gpu.ConfigByName(*archName)
	if err != nil {
		fail("%v", err)
	}
	arch.NoCycleSkip = *noskip
	model, err := flame.ParseFaultModel(*modelFlag)
	if err != nil {
		fail("%v", err)
	}

	var names []string
	switch {
	case *benchList != "":
		names = strings.Split(*benchList, ",")
	case *suite == "all":
		for _, b := range bench.All() {
			names = append(names, b.Name)
		}
	case *suite == "quick":
		names = quickSuite
	default:
		fail("unknown suite %q (want quick or all)", *suite)
	}
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
	}

	if *ciTarget < 0 || *ciTarget >= 0.5 {
		fail("-ci-target %v out of range (0, 0.5)", *ciTarget)
	}
	if *ciTarget > 0 && !*stratify && *serve == "" {
		fail("-ci-target needs -stratify (adaptive sampler) or -serve (coordinator early stop)")
	}
	if *audit && !*stratify {
		fail("-audit needs -stratify")
	}
	skey, err := core.ParseStrataKey(*strataKey)
	if err != nil {
		fail("-strata-key: %v", err)
	}
	if *strataKey != "" && !*stratify && !*listStrata {
		fail("-strata-key needs -stratify or -list-strata")
	}
	if *stratify {
		switch {
		case *serve != "":
			fail("-stratify runs in-process; a distributed campaign uses the uniform grid (pair -serve with -ci-target for coordinator early stop)")
		case *resume:
			fail("-stratify cannot -resume: the adaptive schedule depends on every prior outcome")
		case *strikes > 1:
			fail("-stratify supports single-strike trials only")
		}
	}

	// Distributed coordinator mode: serve shards to workers instead of
	// computing trials locally.
	if *serve != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		fr, err := dist.Serve(ctx, dist.ServeConfig{
			Addr: *serve,
			Coord: dist.CoordConfig{
				Info: dist.CampaignInfo{
					Arch: arch, Scheme: scheme.FlagName(), WCDL: *wcdl, ExtendRegions: *extend,
					Benchmarks: names, Trials: *trials, Seed: *seed, Model: *modelFlag,
					StrikesPerTrial: *strikes, HangBudgetMult: *budget,
					TrialTimeoutMS: trialTimeout.Milliseconds(),
					Prune:          *prune, NoCOW: *noCOW, CITarget: *ciTarget,
					Trace: *fingerprint,
				},
				StateDir: *state, Dashboard: *dashboard, Logf: logf,
			},
		})
		interrupted := errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			fail("%v", err)
		}
		fmt.Print(fr.Report)
		if !fr.Integrity.Clean() || fr.Integrity.Missing > 0 {
			fmt.Printf("stream integrity: %s\n", fr.Integrity)
		}
		for _, s := range fr.Quarantined {
			fmt.Printf("QUARANTINED %s: excluded after repeated lease failures\n", s)
		}
		if len(fr.EarlyStopped) > 0 {
			fmt.Printf("early stop: %s converged under ci_target %g (%d shards cancelled)\n",
				strings.Join(fr.EarlyStopped, ", "), *ciTarget, len(fr.Cancelled))
		}
		if *jsonOut != "" {
			data, jerr := fr.Report.JSON()
			if jerr != nil {
				fail("json: %v", jerr)
			}
			data = append(data, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(data)
			} else if werr := os.WriteFile(*jsonOut, data, 0o644); werr != nil {
				fail("%v", werr)
			}
		}
		if interrupted || !fr.Complete {
			logf("partial report; resume with the same -state %s", *state)
			stopProf()
			os.Exit(3)
		}
		exitUncovered(rep2exit(fr.Report, model, scheme), stopProf)
		return
	}

	specs := make([]*core.KernelSpec, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			fail("%v", err)
		}
		specs[i] = b.Spec()
	}

	// One-shot strata listing: the enumerated injection-site partition
	// the stratified sampler would draw from, without running trials.
	if *listStrata {
		opt := core.Options{Scheme: scheme, WCDL: *wcdl, ExtendRegions: *extend}
		fmt.Print(strataTable(arch, opt, specs, model, skey))
		stopProf()
		return
	}

	// One-shot restore/prune profile: per-benchmark page accounting
	// instead of a campaign report.
	if *profileRestore {
		ccfg := campaign.Config{
			Arch:            arch,
			Opt:             core.Options{Scheme: scheme, WCDL: *wcdl, ExtendRegions: *extend},
			Trials:          *trials,
			Seed:            *seed,
			Model:           model,
			StrikesPerTrial: *strikes,
			HangBudgetMult:  *budget,
		}
		fmt.Print(restoreProfile(ccfg, specs))
		stopProf()
		return
	}

	// Resume: scan the previous event stream for classified trials and
	// skip exactly those; new events append to the same file, and the
	// final report is rebuilt from the union.
	var skip func(string, int) bool
	if *resume {
		if *events == "" || *events == "-" {
			fail("-resume requires -events FILE")
		}
		if f, err := os.Open(*events); err == nil {
			done, derr := campaign.DoneSet(f)
			f.Close()
			if derr != nil {
				fail("%v", derr)
			}
			n := 0
			for _, m := range done {
				n += len(m)
			}
			logf("resuming: %d trials already classified in %s", n, *events)
			skip = func(bench string, t int) bool { return done[bench][t] }
		} else if !os.IsNotExist(err) {
			fail("%v", err)
		}
	}

	var eventsW io.Writer
	var eventsF *os.File
	if *events == "-" {
		eventsW = os.Stderr
	} else if *events != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *resume {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(*events, mode, 0o644)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		eventsW = f
		eventsF = f
	}

	// Graceful interrupt: finish in-flight trials, flush the stream,
	// print the partial report. A second signal kills immediately.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		logf("interrupt: finishing in-flight trials and flushing events (again to kill)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	ccfg := campaign.Config{
		Arch:            arch,
		Opt:             core.Options{Scheme: scheme, WCDL: *wcdl, ExtendRegions: *extend},
		Specs:           specs,
		Trials:          *trials,
		Parallel:        *parallel,
		Seed:            *seed,
		Model:           model,
		StrikesPerTrial: *strikes,
		HangBudgetMult:  *budget,
		TrialTimeout:    *trialTimeout,
		Events:          eventsW,
		Stop:            stop,
		Skip:            skip,
		Prune:           *prune,
		NoCOW:           *noCOW,
		Stratify:        *stratify,
		CITarget:        *ciTarget,
		Pilot:           *pilot,
		StrataKey:       *strataKey,
		Trace:           *fingerprint,
	}
	rep, err := campaign.Run(ccfg)
	stopped := errors.Is(err, campaign.ErrStopped)
	if err != nil && !stopped {
		fail("%v", err)
	}

	// Under -resume the printed report is the union of the old stream
	// and this run, rebuilt by replay (lenient: a torn line from the
	// interrupted run was re-run above).
	if *resume && eventsF != nil {
		if err := eventsF.Sync(); err != nil {
			fail("%v", err)
		}
		f, err := os.Open(*events)
		if err != nil {
			fail("%v", err)
		}
		merged, ig, rerr := campaign.ReplayIntegrity(f)
		f.Close()
		if rerr != nil {
			fail("replay %s: %v", *events, rerr)
		}
		if ig.Malformed > 0 || ig.Dropped > 0 {
			logf("stream integrity: %s", ig)
		}
		rep = merged
	}
	fmt.Print(rep)

	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			fail("json: %v", err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fail("%v", err)
		}
	}

	if stopped {
		if *events != "" && *events != "-" {
			logf("stopped early: partial report; resume with -events %s -resume", *events)
		} else {
			logf("stopped early: partial report")
		}
		stopProf()
		os.Exit(3)
	}

	// Audit protocol: rerun the exact uniform grid at the same budget
	// and require every stratified point estimate to land inside the
	// grid's Wilson 95% interval.
	if *audit {
		ar, aerr := campaign.Audit(ccfg, rep)
		if aerr != nil {
			fail("audit: %v", aerr)
		}
		fmt.Print(ar)
		if !ar.Pass {
			stopProf()
			os.Exit(1)
		}
	}
	exitUncovered(rep2exit(rep, model, scheme), stopProf)
}

// strataTable renders the -list-strata view: every benchmark's
// enumerated (kernel, section, opcode-class) strata with exact site
// counts and their share of the injectable span.
func strataTable(arch gpu.Config, opt core.Options, specs []*core.KernelSpec, model flame.FaultModel, key core.StrataKey) string {
	t := &stats.Table{Header: []string{
		"benchmark", "stratum", "sites", "weight",
	}}
	var out strings.Builder
	for _, spec := range specs {
		g, err := core.GoldenRun(arch, spec, opt)
		if err != nil {
			fail("%s: %v", spec.Name, err)
		}
		sm, err := core.BuildStrataKeyed(arch, spec, g, model, key)
		if err != nil {
			fail("%s: %v", spec.Name, err)
		}
		inj := sm.InjectableSites()
		for _, st := range sm.Strata {
			t.Add(spec.Name, st.Key(), fmt.Sprintf("%d", st.Sites),
				fmt.Sprintf("%.4f", float64(st.Sites)/float64(inj)))
		}
		fmt.Fprintf(&out, "%s: span %d sites, %d injectable (%d strata), %d no-injection tail\n",
			spec.Name, sm.Span, inj, len(sm.Strata), sm.NoInjectionSites)
	}
	return fmt.Sprintf("injection-site strata: model=%s scheme=%s wcdl=%d\n%s%s",
		model, opt.Scheme, opt.WCDL, out.String(), t.String())
}

// restoreProfile runs every selected benchmark's trial sequence once on
// a pooled engine and renders the page-accounting table behind the
// -profile-restore flag: the memory footprint in pages, how many pages
// trials actually dirty (and so how many a restore copies and a diff
// scans), and what fraction of trials the pruner classifies without
// simulation — or why pruning is unavailable for the benchmark.
func restoreProfile(cfg campaign.Config, specs []*core.KernelSpec) string {
	t := &stats.Table{Header: []string{
		"benchmark", "footprint", "dirty/trial", "restored/trial",
		"diff/trial", "pruned", "prune status",
	}}
	for _, spec := range specs {
		g, err := core.GoldenRun(cfg.Arch, spec, cfg.Opt)
		if err != nil {
			fail("%s: %v", spec.Name, err)
		}
		px := core.BuildPruneIndex(cfg.Arch, spec, g, 0)
		eng := core.NewEngine(cfg.Arch)
		pruned := 0
		for i := 0; i < cfg.Trials; i++ {
			ts := cfg.TrialSpec(g, spec.Name, i)
			if _, ok := px.PruneTrial(g, ts); ok {
				pruned++
				continue
			}
			eng.RunTrial(spec, g, ts)
		}
		st := eng.Stats()
		perTrial := func(n int64) string {
			if st.Trials == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", float64(n)/float64(st.Trials))
		}
		status := "ok"
		if px.Disabled() != "" {
			status = px.Disabled()
		}
		footprint := (spec.MemBytes + gpu.PageBytes - 1) / gpu.PageBytes
		t.Add(spec.Name,
			fmt.Sprintf("%d pages", footprint),
			perTrial(st.DirtyPages), perTrial(st.RestoredPages), perTrial(st.DiffPages),
			fmt.Sprintf("%d/%d", pruned, cfg.Trials), status)
	}
	return fmt.Sprintf("restore/prune profile: trials=%d/bench scheme=%s model=%s seed=%d\n%s",
		cfg.Trials, cfg.Opt.Scheme, cfg.Model, cfg.Seed, t.String())
}

// rep2exit reports whether the campaign found uncovered outcomes under
// the paper's fault model — a failed resilience claim scripts must see.
func rep2exit(rep *campaign.Report, model flame.FaultModel, scheme core.Scheme) bool {
	return model == flame.DataSlice && scheme.Recoverable() && scheme.Detects() &&
		(rep.Fleet.SDC > 0 || rep.Fleet.Hang > 0)
}

func exitUncovered(uncovered bool, stopProf func()) {
	if uncovered {
		stopProf() // os.Exit skips the deferred flush
		os.Exit(2)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flameinject: "+format+"\n", args...)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flameinject: "+format+"\n", args...)
	os.Exit(1)
}
