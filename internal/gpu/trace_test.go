package gpu

import (
	"bytes"
	"testing"

	"flame/internal/isa"
)

// TestCombineHooksOnAdvance pins the clamping contract of the combined
// fast-forward bound: the tighter constituent wins, a constituent
// answering `from` vetoes the skip outright (short-circuiting the other
// side), out-of-range answers are clamped, and an OnCycle consumer
// without an OnAdvance contract degrades the pair to no-skip.
func TestCombineHooksOnAdvance(t *testing.T) {
	bound := func(v int64) func(*Device, int64, int64) int64 {
		return func(_ *Device, from, to int64) int64 { return v }
	}
	passthrough := func(_ *Device, from, to int64) int64 { return to }

	t.Run("tighter-bound-wins", func(t *testing.T) {
		for _, tc := range []struct {
			a, b, want int64
		}{
			{50, 70, 50},
			{70, 50, 50},
			{100, 100, 100},
		} {
			h := CombineHooks(&Hooks{OnAdvance: bound(tc.a)}, &Hooks{OnAdvance: bound(tc.b)})
			if got := h.onAdvance(nil, 0, 100); got != tc.want {
				t.Errorf("a=%d b=%d: got %d, want %d", tc.a, tc.b, got, tc.want)
			}
		}
	})

	t.Run("from-vetoes-and-short-circuits", func(t *testing.T) {
		bCalled := false
		h := CombineHooks(
			&Hooks{OnAdvance: bound(0)},
			&Hooks{OnAdvance: func(_ *Device, from, to int64) int64 {
				bCalled = true
				return to
			}})
		if got := h.onAdvance(nil, 0, 100); got != 0 {
			t.Errorf("got %d, want veto at 0", got)
		}
		if bCalled {
			t.Error("b's OnAdvance consulted after a vetoed the skip")
		}
	})

	t.Run("clamped-into-range", func(t *testing.T) {
		// An answer beyond `to` grants the whole span; below `from` vetoes.
		h := CombineHooks(&Hooks{OnAdvance: bound(999)}, &Hooks{OnAdvance: passthrough})
		if got := h.onAdvance(nil, 10, 100); got != 100 {
			t.Errorf("over-range answer: got %d, want 100", got)
		}
		h = CombineHooks(&Hooks{OnAdvance: bound(-5)}, &Hooks{OnAdvance: passthrough})
		if got := h.onAdvance(nil, 10, 100); got != 10 {
			t.Errorf("under-range answer: got %d, want 10", got)
		}
	})

	t.Run("nil-side-passthrough", func(t *testing.T) {
		h := &Hooks{OnAdvance: bound(42)}
		if got := CombineHooks(nil, h); got != h {
			t.Error("CombineHooks(nil, h) should return h itself")
		}
		if got := CombineHooks(h, nil); got != h {
			t.Error("CombineHooks(h, nil) should return h itself")
		}
	})

	t.Run("oncycle-without-onadvance-disables", func(t *testing.T) {
		h := CombineHooks(
			&Hooks{OnAdvance: passthrough},
			&Hooks{OnCycle: func(*Device) {}})
		if got := h.onAdvance(nil, 10, 100); got != 10 {
			t.Errorf("got %d, want 10 (no-skip for contract-less OnCycle)", got)
		}
	})

	t.Run("slots-tee", func(t *testing.T) {
		rec := func(dst *int64) SlotSink { return sinkFunc(func(span int64) { *dst += span }) }
		var a, b int64
		h := CombineHooks(&Hooks{Slots: rec(&a)}, &Hooks{Slots: rec(&b)})
		h.Slots.CreditSlot(0, 0, 0, SlotIssued, 5, 3)
		if a != 3 || b != 3 {
			t.Errorf("tee did not fan out: a=%d b=%d", a, b)
		}
	})
}

// sinkFunc adapts a closure to SlotSink for tests.
type sinkFunc func(span int64)

func (f sinkFunc) CreditSlot(smID, sched, warp int, r SlotReason, cycle, span int64) { f(span) }

// TestWindowedTracerSkipIdentity asserts the Tracer satellite: a tracer
// bounded to a cycle window emits a byte-identical trace with skipping
// on and off, and attaching it no longer disables skipping (its
// OnAdvance grants spans, so an OnCycle-free tracer run still
// fast-forwards stalled stretches).
func TestWindowedTracerSkipIdentity(t *testing.T) {
	const src = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    shl r4, r3, 2
	    ld.param r5, [0]
	    add r6, r5, r4
	    ld.global r7, [r6]
	    add r8, r7, 7
	    st.global [r6], r8
	    exit
	`
	prog := isa.MustParse("windowed", src)
	setup := func(mem []uint32) {
		for i := 0; i < 2048; i++ {
			mem[i] = uint32(i)
		}
	}

	run := func(noSkip bool) (string, Stats, int64) {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.FromCycle, tr.ToCycle = 40, 400
		var onCycleCalls int64
		hooks := CombineHooks(tr.Hooks(), &Hooks{
			OnCycle:   func(*Device) { onCycleCalls++ },
			OnAdvance: func(_ *Device, from, to int64) int64 { return to },
		})
		st, _ := runForStats(t, noSkip, prog, isa.Dim3{X: 8}, isa.Dim3{X: 64},
			[]uint32{0}, setup, hooks)
		if tr.Events == 0 {
			t.Fatal("windowed tracer saw no events; widen the window")
		}
		return buf.String(), st, onCycleCalls
	}

	naiveTrace, naiveStats, naiveCalls := run(true)
	fastTrace, fastStats, fastCalls := run(false)
	if naiveStats != fastStats {
		t.Errorf("stats diverge:\n naive: %+v\n  fast: %+v", naiveStats, fastStats)
	}
	if naiveTrace != fastTrace {
		t.Errorf("windowed traces differ:\n naive:\n%s\n fast:\n%s", naiveTrace, fastTrace)
	}
	if fastCalls >= naiveCalls {
		t.Errorf("skipping disabled with tracer attached: %d OnCycle calls with skip, %d without",
			fastCalls, naiveCalls)
	}
}
