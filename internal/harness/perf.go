package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"flame/internal/bench"
	"flame/internal/campaign"
	"flame/internal/core"
)

// PerfReport is the repo's performance trajectory record, written to
// BENCH_sim.json by `flamebench -exp perf` and uploaded by CI so every
// PR's throughput can be compared against its predecessors. All rates
// are wall-clock and therefore machine-dependent; the Host fields exist
// so cross-machine numbers are never compared blindly.
type PerfReport struct {
	// Timestamp is when the measurement ran (UTC, RFC 3339). Together
	// with Host.Commit it keys the run in the BENCH_sim.json history.
	Timestamp string `json:"timestamp,omitempty"`
	// Host identifies the measuring machine class.
	Host struct {
		OS     string `json:"os"`
		Arch   string `json:"arch"`
		CPUs   int    `json:"cpus"`
		GoVer  string `json:"go"`
		Commit string `json:"commit,omitempty"`
	} `json:"host"`
	// SimCyclesPerSec is Device.Run throughput on a memory-bound
	// benchmark with event-driven cycle skipping on (the default) and
	// off (the naive per-cycle loop).
	SimCyclesPerSec      float64 `json:"sim_cycles_per_sec"`
	SimCyclesPerSecNaive float64 `json:"sim_cycles_per_sec_naive"`
	SkipSpeedup          float64 `json:"skip_speedup"`
	// TrialsPerSec is end-to-end campaign throughput (mini-campaign,
	// all workers) and AllocsPerTrial / BytesPerTrial the per-trial
	// allocation cost measured single-threaded on one pooled engine.
	CampaignTrials int     `json:"campaign_trials"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	BytesPerTrial  float64 `json:"bytes_per_trial"`
	Benchmark      string  `json:"benchmark"`
}

// PerfBench measures simulator and campaign throughput and writes the
// report to outPath (BENCH_sim.json). The workload choices mirror the
// micro-benchmarks in internal/gpu and internal/core but run through
// the public entry points, so the numbers track what users of flamesim
// and flameinject actually experience.
func PerfBench(cfg Config, outPath string, trials int) (*PerfReport, error) {
	cfg.fill()
	if trials <= 0 {
		trials = 50
	}
	rep := &PerfReport{Benchmark: "Triad"}
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	rep.Host.OS = runtime.GOOS
	rep.Host.Arch = runtime.GOARCH
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GoVer = runtime.Version()
	rep.Host.Commit = headCommit()

	b, err := bench.ByName(rep.Benchmark)
	if err != nil {
		return nil, err
	}
	spec := b.Spec()

	// Device.Run throughput, skip on vs off. Repeat runs until a
	// minimum wall-clock budget is spent so short kernels still give a
	// stable rate on noisy machines.
	measure := func(noSkip bool) (float64, error) {
		arch := cfg.Arch
		arch.NoCycleSkip = noSkip
		var cycles int64
		start := time.Now()
		for time.Since(start) < 300*time.Millisecond {
			res, err := core.Run(arch, spec, core.Options{Scheme: core.Baseline})
			if err != nil {
				return 0, err
			}
			cycles += res.Stats.Cycles
		}
		return float64(cycles) / time.Since(start).Seconds(), nil
	}
	if rep.SimCyclesPerSec, err = measure(false); err != nil {
		return nil, err
	}
	if rep.SimCyclesPerSecNaive, err = measure(true); err != nil {
		return nil, err
	}
	rep.SkipSpeedup = rep.SimCyclesPerSec / rep.SimCyclesPerSecNaive

	// Per-trial allocation cost: single goroutine, one pooled engine,
	// Mallocs/TotalAlloc deltas across `trials` trials.
	g, err := core.GoldenRun(cfg.Arch, spec, core.FlameOptions())
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(cfg.Arch)
	ts := core.TrialSpec{Seed: 1, MaxCycles: g.HangBudget(0)}
	ts.Arms = []int64{g.Window / 3}
	eng.RunTrial(spec, g, ts) // warm the device cache before measuring
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < trials; i++ {
		ts.Arms[0] = (int64(i) * g.Window) / int64(trials)
		ts.Seed = int64(i) + 7
		eng.RunTrial(spec, g, ts)
	}
	runtime.ReadMemStats(&after)
	rep.AllocsPerTrial = float64(after.Mallocs-before.Mallocs) / float64(trials)
	rep.BytesPerTrial = float64(after.TotalAlloc-before.TotalAlloc) / float64(trials)

	// End-to-end campaign throughput with the default worker count.
	ccfg := campaign.Config{
		Arch:   cfg.Arch,
		Opt:    core.FlameOptions(),
		Specs:  []*core.KernelSpec{spec},
		Trials: trials,
		Seed:   1,
	}
	start := time.Now()
	if _, err := campaign.Run(ccfg); err != nil {
		return nil, err
	}
	rep.CampaignTrials = trials
	rep.TrialsPerSec = float64(trials) / time.Since(start).Seconds()

	if outPath != "" {
		if err := AppendPerfHistory(outPath, rep); err != nil {
			return nil, err
		}
	}
	cfg.printf("perf: %.0f simcycles/s (%.2fx over naive), %.1f trials/s, %.0f allocs/trial\n",
		rep.SimCyclesPerSec, rep.SkipSpeedup, rep.TrialsPerSec, rep.AllocsPerTrial)
	return rep, nil
}

// headCommit identifies the measured revision: CI's GITHUB_SHA when set,
// otherwise a best-effort `git rev-parse`; empty when neither works.
func headCommit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// AppendPerfHistory appends the report to the JSON history at path, so
// BENCH_sim.json accumulates the performance trajectory across commits
// instead of only remembering the latest run. The file is a JSON array
// in time order; a legacy single-object file (the pre-history format) is
// migrated into a one-element array before appending. Unreadable or
// corrupt existing content is an error — history is never silently
// discarded.
func AppendPerfHistory(path string, rep *PerfReport) error {
	var history []json.RawMessage
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 {
			if trimmed[0] == '{' {
				// Legacy format: one bare report object.
				var legacy json.RawMessage
				if err := json.Unmarshal(trimmed, &legacy); err != nil {
					return err
				}
				history = append(history, legacy)
			} else if err := json.Unmarshal(trimmed, &history); err != nil {
				return err
			}
		}
	case os.IsNotExist(err):
		// First run: start a fresh history.
	default:
		return err
	}
	entry, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	history = append(history, entry)
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
