package bench

import (
	"flame/internal/core"
	"flame/internal/isa"
)

// Rodinia, part C: CFD, Kmeans, KNN.

// CFD: Euler flux accumulation — gather over an irregular neighbour list
// with per-edge floating-point work.
var CFD = register(&Benchmark{
	Name:        "CFD",
	Suite:       "Rodinia",
	Description: "Euler solver flux accumulation over cell neighbours",
	Src: `
    mov r0, %tid.x
    mov r1, %ctaid.x
    mov r2, %ntid.x
    mad r3, r1, r2, r0         // cell
    ld.param r4, [0]           // &density
    ld.param r5, [4]           // &momentum
    ld.param r6, [8]           // &neigh (4 per cell)
    ld.param r7, [12]          // &flux out
    shl r8, r3, 2
    add r9, r4, r8
    ld.global r10, [r9]        // rho_i
    add r11, r5, r8
    ld.global r12, [r11]       // m_i
    fmul r13, r0, 0f           // flux = 0
    shl r14, r3, 4             // cell*16 bytes
    mov r15, 0                 // j
LOOP:
    shl r16, r15, 2
    add r17, r14, r16
    add r18, r6, r17
    ld.global r19, [r18]       // nb index
    shl r20, r19, 2
    add r21, r4, r20
    ld.global r22, [r21]       // rho_nb
    add r23, r5, r20
    ld.global r24, [r23]       // m_nb
    fsub r25, r22, r10
    fsub r26, r24, r12
    fmul r27, r25, r25
    fma r27, r26, r26, r27
    sqrt r28, r27
    fadd r29, r25, r26
    fma r13, r29, 0.25f, r13
    fma r13, r28, 0.125f, r13
    add r15, r15, 1
    setp.lt p0, r15, 4
@p0 bra LOOP
    add r30, r7, r8
    st.global [r30], r13
    exit
`,
	Grid:     d3(8, 1, 1),
	Block:    d3(128, 1, 1),
	MemBytes: 1 << 17,
	Params:   []uint32{0, cfdN * 4, cfdN * 8, cfdN * 24},
	Setup: func(mem []uint32) {
		r := lcg(103)
		for i := 0; i < cfdN; i++ {
			mem[i] = f(r.unitFloat())
			mem[cfdN+i] = f(r.unitFloat())
		}
		for i := 0; i < cfdN*4; i++ {
			mem[2*cfdN+i] = (r.next() * 31) % cfdN
		}
	},
	Validate: func(mem []uint32) error {
		r := lcg(103)
		rho := make([]float32, cfdN)
		mom := make([]float32, cfdN)
		for i := 0; i < cfdN; i++ {
			rho[i] = r.unitFloat()
			mom[i] = r.unitFloat()
		}
		nb := make([]uint32, cfdN*4)
		for i := range nb {
			nb[i] = (r.next() * 31) % cfdN
		}
		for i := 0; i < cfdN; i++ {
			flux := float32(0)
			for j := 0; j < 4; j++ {
				n := nb[i*4+j]
				dr := fsub(rho[n], rho[i])
				dm := fsub(mom[n], mom[i])
				mag := fsqrt(fmaf(dm, dm, fmul(dr, dr)))
				flux = fmaf(fadd(dr, dm), 0.25, flux)
				flux = fmaf(mag, 0.125, flux)
			}
			if err := expectF32(mem, 6*cfdN+i, flux, "flux"); err != nil {
				return err
			}
		}
		return nil
	},
})

const cfdN = 8 * 128

// Kmeans: cluster assignment — nearest centroid over 8 clusters and 4
// features per point.
var Kmeans = register(&Benchmark{
	Name:        "Kmeans",
	Suite:       "Rodinia",
	Description: "k-means cluster assignment step",
	Src: `
    mov r0, %tid.x
    mov r1, %ctaid.x
    mov r2, %ntid.x
    mad r3, r1, r2, r0        // point
    ld.param r4, [0]          // &features (SoA: f*N + i)
    ld.param r5, [4]          // &centroids (8 x 4)
    ld.param r6, [8]          // &membership
    ld.param r7, [12]         // N
    mov r8, 0                 // cluster
    mov r9, 0                 // best index
    mov r10, 0x7F7FFFFF      // best dist
CLUSTER:
    fmul r11, r0, 0f          // dist = 0
    mov r12, 0                // feature
FEAT:
    mad r13, r12, r7, r3      // f*N + i
    shl r14, r13, 2
    add r15, r4, r14
    ld.global r16, [r15]      // x[f]
    shl r17, r8, 2
    mad r18, r17, 4, 0        // cluster*16
    shl r19, r12, 2
    add r20, r18, r19
    add r21, r5, r20
    ld.global r22, [r21]      // c[cluster][f]
    fsub r23, r16, r22
    fma r11, r23, r23, r11
    add r12, r12, 1
    setp.lt p0, r12, 4
@p0 bra FEAT
    setp.flt p1, r11, r10
    selp r10, r11, r10, p1
    selp r9, r8, r9, p1
    add r8, r8, 1
    setp.lt p2, r8, 8
@p2 bra CLUSTER
    shl r24, r3, 2
    add r25, r6, r24
    st.global [r25], r9
    exit
`,
	Grid:  d3(8, 1, 1),
	Block: d3(128, 1, 1),
	Steps: []core.Step{{
		// Second kernel: histogram the assignments into per-cluster
		// member counts (the reduction step of a k-means iteration).
		Prog: isa.MustParse("kmeans-count", `
    mov r0, %tid.x
    mov r1, %ctaid.x
    mov r2, %ntid.x
    mad r3, r1, r2, r0
    ld.param r4, [0]          // &membership
    ld.param r5, [4]          // &counts (8)
    shl r6, r3, 2
    add r7, r4, r6
    ld.global r8, [r7]
    shl r9, r8, 2
    add r10, r5, r9
    mov r11, 1
    atom.global.add r12, [r10], r11
    exit
`),
		Grid:   d3(8, 1, 1),
		Block:  d3(128, 1, 1),
		Params: []uint32{kmN*16 + 128, kmN*16 + 128 + kmN*4},
	}},
	MemBytes: 1 << 17,
	Params:   []uint32{0, kmN * 16, kmN*16 + 128, kmN},
	Setup: func(mem []uint32) {
		r := lcg(107)
		for i := 0; i < kmN*4; i++ {
			mem[i] = f(r.unitFloat())
		}
		for i := 0; i < 32; i++ {
			mem[kmN*4+i] = f(r.unitFloat())
		}
	},
	Validate: func(mem []uint32) error {
		r := lcg(107)
		feat := make([]float32, kmN*4)
		for i := range feat {
			feat[i] = r.unitFloat()
		}
		var cen [8][4]float32
		for c := 0; c < 8; c++ {
			for d := 0; d < 4; d++ {
				cen[c][d] = r.unitFloat()
			}
		}
		counts := make([]uint32, 8)
		for i := 0; i < kmN; i++ {
			best := ff(0x7F7FFFFF)
			bi := uint32(0)
			for c := 0; c < 8; c++ {
				dist := float32(0)
				for d := 0; d < 4; d++ {
					diff := fsub(feat[d*kmN+i], cen[c][d])
					dist = fmaf(diff, diff, dist)
				}
				if dist < best {
					best = dist
					bi = uint32(c)
				}
			}
			counts[bi]++
			if err := expectU32(mem, kmN*4+32+i, bi, "member"); err != nil {
				return err
			}
		}
		for c := 0; c < 8; c++ {
			if err := expectU32(mem, kmN*4+32+kmN+c, counts[c], "count"); err != nil {
				return err
			}
		}
		return nil
	},
})

const kmN = 8 * 128

// KNN: k-nearest-neighbours distance kernel — euclidean distance from a
// query record to every reference record.
var KNN = register(&Benchmark{
	Name:        "KNN",
	Suite:       "Rodinia",
	Description: "euclidean distances to a query record",
	Src: `
    mov r0, %tid.x
    mov r1, %ctaid.x
    mov r2, %ntid.x
    mad r3, r1, r2, r0        // record
    ld.param r4, [0]          // &records (8 fields each)
    ld.param r5, [4]          // &query (8 fields)
    ld.param r6, [8]          // &dist out
    shl r7, r3, 5             // record*32 bytes
    fmul r8, r0, 0f           // acc = 0
    mov r9, 0                 // field
LOOP:
    shl r10, r9, 2
    add r11, r7, r10
    add r12, r4, r11
    ld.global r13, [r12]
    add r14, r5, r10
    ld.global r15, [r14]
    fsub r16, r13, r15
    fma r8, r16, r16, r8
    add r9, r9, 1
    setp.lt p0, r9, 8
@p0 bra LOOP
    sqrt r17, r8
    shl r18, r3, 2
    add r19, r6, r18
    st.global [r19], r17
    exit
`,
	Grid:     d3(8, 1, 1),
	Block:    d3(256, 1, 1),
	MemBytes: 1 << 18,
	Params:   []uint32{32, 0, 32 + knnN*32},
	Setup: func(mem []uint32) {
		r := lcg(109)
		for i := 0; i < 8; i++ { // query at offset 0
			mem[i] = f(r.unitFloat())
		}
		for i := 0; i < knnN*8; i++ {
			mem[8+i] = f(r.unitFloat())
		}
	},
	Validate: func(mem []uint32) error {
		r := lcg(109)
		var q [8]float32
		for i := 0; i < 8; i++ {
			q[i] = r.unitFloat()
		}
		rec := make([]float32, knnN*8)
		for i := range rec {
			rec[i] = r.unitFloat()
		}
		for i := 0; i < knnN; i++ {
			acc := float32(0)
			for d := 0; d < 8; d++ {
				diff := fsub(rec[i*8+d], q[d])
				acc = fmaf(diff, diff, acc)
			}
			want := fsqrt(acc)
			if err := expectF32(mem, 8+knnN*8+i, want, "dist"); err != nil {
				return err
			}
		}
		return nil
	},
})

const knnN = 8 * 256
