package dist

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flame/internal/core"
)

// TestWriteJSONContentTypeAndEncodeErrors: every writeJSON response
// carries the JSON Content-Type, and an encode failure is logged
// instead of dropped (the status line is already out, so logging is the
// only trace left).
func TestWriteJSONContentTypeAndEncodeErrors(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]int{"a": 1})
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", got)
	}
	if got := strings.TrimSpace(rec.Body.String()); got != `{"a":1}` {
		t.Fatalf("body = %q", got)
	}

	var mu sync.Mutex
	var logged []string
	orig := writeJSONLogf
	writeJSONLogf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	defer func() { writeJSONLogf = orig }()

	// A channel is not marshalable: Encode fails after the header went
	// out, and the failure must reach the log.
	writeJSON(httptest.NewRecorder(), http.StatusOK, make(chan int))
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || !strings.Contains(logged[0], "unsupported type") {
		t.Fatalf("encode failure not logged: %q", logged)
	}
}

// metricsTestCoordinator builds a coordinator with hand-set state — no
// golden runs, no HTTP — so the rendered metrics page is a pure
// function of the struct and can be pinned byte-for-byte.
func metricsTestCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	info := testInfo(6)
	info.Trace = true
	cfg, err := info.Config()
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{
		cc:       CoordConfig{Info: info},
		cfg:      cfg,
		epoch:    2,
		leaseSeq: 7,
		leases:   map[string]*shardCtl{},
		workers:  map[string]string{"w0": "", "w1": "", "evil": "golden vote failed"},
		tally:    map[string]int{"masked": 5, "sdc": 2, "due": 1, "no-injection": 1},
		bstats: map[string]*benchTally{
			"Triad":     {injected: 5, sdc: 2, due: 1},
			"Histogram": {injected: 3, sdc: 0, due: 0},
		},
		stopped:  map[string]bool{"Histogram": true},
		pruneOff: map[string]string{"Triad": "schedule overflow"},
	}
	mkShard := func(id, lo, hi int, bench, state string, fails, seen int) *shardCtl {
		sc := &shardCtl{state: state, fails: fails, seen: map[int]bool{}}
		sc.shard.ID, sc.shard.Lo, sc.shard.Hi, sc.shard.Bench = id, lo, hi, bench
		for i := 0; i < seen; i++ {
			sc.seen[lo+i] = true
		}
		return sc
	}
	c.shards = []*shardCtl{
		mkShard(0, 0, 3, "Triad", stateDone, 0, 3),
		mkShard(1, 3, 6, "Triad", stateLeased, 1, 2),
		mkShard(2, 0, 3, "Histogram", stateDone, 0, 3),
		mkShard(3, 3, 6, "Histogram", stateCancelled, 0, 0),
	}
	c.leases["e2-l7-s1"] = c.shards[1]
	for _, v := range []int64{0, 3, 9, 40} {
		c.prop.fold(&core.PropRecord{StrikeCycle: 1, StoreCycle: 1 + v, Depth: v, DetectLatency: -1})
	}
	c.prop.fold(&core.PropRecord{StrikeCycle: 1, StoreCycle: -1, Depth: -1, DetectLatency: -1,
		Fingerprint: "00000000deadbeef"})
	c.prop.fold(&core.PropRecord{StrikeCycle: 1, StoreCycle: -1, Depth: -1, DetectLatency: -1,
		Fingerprint: "00000000deadbeef"})
	c.prop.fold(&core.PropRecord{StrikeCycle: 1, StoreCycle: -1, Depth: -1, DetectLatency: -1,
		Fingerprint: "0123456789abcdef"})
	return c
}

// TestMetricsGolden pins the exact Prometheus exposition bytes the
// coordinator serves, so accidental format drift (label order, HELP
// text, histogram bucketing) is caught. Regenerate with
// UPDATE_METRICS_GOLDEN=1 go test ./internal/dist -run TestMetricsGolden
func TestMetricsGolden(t *testing.T) {
	c := metricsTestCoordinator(t)
	got := c.renderMetricsLocked(12.5)

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_METRICS_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_METRICS_GOLDEN=1)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("metrics page drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestStatusAndMetricsUnderLoad hammers the read-only endpoints while a
// worker streams a real campaign — the race detector turns any unlocked
// read in the handlers into a failure, and the final merged report must
// still be byte-identical.
func TestStatusAndMetricsUnderLoad(t *testing.T) {
	info := testInfo(6)
	want := singleReport(t, info)
	c, srv, _ := testCoord(t, info, t.TempDir())

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		path := "/v1/status"
		if i%2 == 1 {
			path = "/metrics"
		}
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					continue // server may be mid-shutdown at test end
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	if err := RunWorker(context.Background(), WorkerConfig{
		URL: srv.URL, Name: "loaded", FlushEvery: 1, Logf: t.Logf,
	}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	fr := waitDone(t, c, 60*time.Second)
	close(stop)
	readers.Wait()
	checkByteIdentical(t, fr, want)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"flame_campaign_trials_done_total 12",
		`flame_shards{state="done"}`,
		"flame_leases_granted_total",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// TestDistTracedByteIdentical: a traced distributed campaign (baseline
// scheme, full-site model, so SDCs occur and carry fingerprints) merges
// byte-identical to the traced single-process run, and the
// coordinator's /metrics carries the propagation tallies — including
// after a coordinator restart, which must rebuild them from the shard
// streams without losing counts.
func TestDistTracedByteIdentical(t *testing.T) {
	info := testInfo(6)
	info.Scheme = "baseline"
	info.Model = "full"
	info.Trace = true
	want := singleReport(t, info)
	dir := t.TempDir()
	c, srv, cancel := testCoord(t, info, dir)

	if err := RunWorker(context.Background(), WorkerConfig{
		URL: srv.URL, Name: "tracer", FlushEvery: 2, Logf: t.Logf,
	}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	fr := waitDone(t, c, 60*time.Second)
	checkByteIdentical(t, fr, want)
	if fr.Report.Fleet.Propagation == nil || fr.Report.Fleet.Propagation.Traced == 0 {
		t.Fatal("merged traced report has no propagation section")
	}

	readCounters := func(url string) (traced float64, page string) {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		page = string(data)
		for _, line := range strings.Split(page, "\n") {
			if strings.HasPrefix(line, "flame_propagation_traced_total ") {
				fmt.Sscanf(line, "flame_propagation_traced_total %g", &traced)
			}
		}
		return traced, page
	}
	traced1, page := readCounters(srv.URL)
	if traced1 == 0 {
		t.Fatalf("live metrics carry no propagation tally:\n%s", page)
	}
	if !strings.Contains(page, "flame_propagation_cycles_bucket") {
		t.Fatalf("metrics missing propagation depth histogram:\n%s", page)
	}
	cancel()
	srv.Close()

	// Restart on the same state dir: the tallies must be rebuilt from
	// the shard streams, not reset.
	c2, srv2, _ := testCoord(t, info, dir)
	waitDone(t, c2, 10*time.Second)
	traced2, page2 := readCounters(srv2.URL)
	if traced2 != traced1 {
		t.Fatalf("propagation tally not monotone across restart: %v -> %v\n%s", traced1, traced2, page2)
	}
}

// TestDashboardServed: the dashboard is gated by CoordConfig.Dashboard
// and serves a self-contained HTML page that references the two
// endpoints it polls.
func TestDashboardServed(t *testing.T) {
	info := testInfo(3)
	c, err := NewCoordinator(CoordConfig{
		Info: info, StateDir: t.TempDir(), Dashboard: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{"/v1/status", "/metrics", "<html"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// Without the flag the route does not exist.
	c2, err := NewCoordinator(CoordConfig{Info: info, StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated /dashboard returned %d, want 404", resp2.StatusCode)
	}
}
