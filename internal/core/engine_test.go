package core

import (
	"reflect"
	"testing"

	"flame/internal/flame"
	"flame/internal/isa"
)

// stepSpec returns a two-launch application (the main kernel doubles,
// the step adds one) so engine trials exercise precompiled StepComps.
func stepSpec() *KernelSpec {
	const mainSrc = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    shl r4, r3, 2
	    ld.param r5, [0]
	    add r6, r5, r4
	    ld.global r7, [r6]
	    add r8, r7, r7
	    st.global [r6], r8
	    exit
	`
	const stepSrc = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    shl r4, r3, 2
	    ld.param r5, [0]
	    add r6, r5, r4
	    ld.global r7, [r6]
	    add r8, r7, 1
	    st.global [r6], r8
	    exit
	`
	const n = 4 * 64
	return &KernelSpec{
		Name:     "twostep",
		Prog:     isa.MustParse("double", mainSrc),
		Grid:     isa.Dim3{X: 4},
		Block:    isa.Dim3{X: 64},
		Params:   []uint32{0},
		MemBytes: 1 << 12,
		Steps: []Step{{
			Prog: isa.MustParse("addone", stepSrc),
			Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}, Params: []uint32{0},
		}},
		Setup: func(mem []uint32) {
			for i := 0; i < n; i++ {
				mem[i] = uint32(i)
			}
		},
		Validate: func(mem []uint32) error {
			for i := 0; i < n; i++ {
				if mem[i] != uint32(2*i+1) {
					return errAt(i, mem[i])
				}
			}
			return nil
		},
	}
}

type validationErr struct {
	idx int
	got uint32
}

func (e *validationErr) Error() string { return "bad output word" }

func errAt(i int, got uint32) error { return &validationErr{i, got} }

// TestEngineTrialMatchesFreshDevice is the pooling-equivalence contract:
// a sequence of trials on one Engine (pooled device, restored memory,
// shared compilation) produces results deep-equal to fresh-device
// core.RunTrial calls, across schemes, fault models and multi-launch
// applications — including Hang and DUE trials, whose partial state the
// next trial on the pooled device must not observe.
func TestEngineTrialMatchesFreshDevice(t *testing.T) {
	cfg := testCfg()
	cases := []struct {
		name  string
		spec  *KernelSpec
		opt   Options
		model flame.FaultModel
	}{
		{"saxpy-flame-data", saxpySpec(), FlameOptions(), flame.DataSlice},
		{"spin-baseline-full", spinSpec(), Options{Scheme: Baseline}, flame.FullSite},
		{"twostep-flame-full", stepSpec(), FlameOptions(), flame.FullSite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := GoldenRun(cfg, tc.spec, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(cfg)
			outcomes := map[Outcome]int{}
			for i := int64(0); i < 24; i++ {
				ts := TrialSpec{
					Arms:      []int64{(i * g.Window) / 30},
					Model:     tc.model,
					Seed:      i*2654435761 + 17,
					MaxCycles: g.HangBudget(0),
				}
				fresh := RunTrial(cfg, tc.spec, g, ts)
				pooled := eng.RunTrial(tc.spec, g, ts)
				if !reflect.DeepEqual(fresh, pooled) {
					t.Fatalf("trial %d diverges:\n fresh: %+v\npooled: %+v", i, fresh, pooled)
				}
				outcomes[fresh.Outcome]++
			}
			t.Logf("%s outcomes: %v", tc.name, outcomes)
		})
	}
}

// TestEngineTrialSkipEquivalence: pooled trials with event-driven cycle
// skipping disabled match trials with it enabled, field for field —
// the campaign-level statement of the tentpole invariant.
func TestEngineTrialSkipEquivalence(t *testing.T) {
	spec := saxpySpec()
	for _, opt := range []Options{FlameOptions(), {Scheme: Baseline}} {
		cfgFast := testCfg()
		cfgNaive := testCfg()
		cfgNaive.NoCycleSkip = true
		gFast, err := GoldenRun(cfgFast, spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		gNaive, err := GoldenRun(cfgNaive, spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if gFast.Window != gNaive.Window {
			t.Fatalf("%s: golden window %d (skip) != %d (naive)",
				opt.Scheme, gFast.Window, gNaive.Window)
		}
		engFast, engNaive := NewEngine(cfgFast), NewEngine(cfgNaive)
		for i := int64(0); i < 12; i++ {
			ts := TrialSpec{
				Arms:      []int64{(i * gFast.Window) / 15},
				Seed:      i + 99,
				MaxCycles: gFast.HangBudget(0),
			}
			fast := engFast.RunTrial(spec, gFast, ts)
			naive := engNaive.RunTrial(spec, gNaive, ts)
			if !reflect.DeepEqual(fast, naive) {
				t.Fatalf("%s trial %d diverges with skipping off:\n  fast: %+v\n naive: %+v",
					opt.Scheme, i, fast, naive)
			}
		}
	}
}
