package gpu

import "flame/internal/isa"

// BlockState is a thread block resident on an SM.
type BlockState struct {
	// Slot is the SM-local block slot index.
	Slot int
	// GlobalID is the launch-wide block index, or -1 if the slot is free.
	GlobalID int
	// Shared is the block's shared-memory scratchpad.
	Shared []uint32
	// BarGen counts barrier releases in this block.
	BarGen int
	// WarpIdx lists the SM warp indices belonging to this block.
	WarpIdx   []int
	liveWarps int
}

// SM is one streaming multiprocessor.
type SM struct {
	ID     int
	dev    *Device
	Warps  []*Warp
	Blocks []*BlockState
	scheds []scheduler
	l1     *cacheModel

	lsuBusyUntil int64
	sfuBusyUntil int64
	// dramFree / l2Free model this SM's share of DRAM and L2 bandwidth:
	// the cycle its next line transaction can start service.
	dramFree int64
	l2Free   int64
	// mshrRelease holds completion cycles of outstanding L1 misses.
	mshrRelease []int64

	liveWarps int
}

// mshrAvailable reports whether an L1 miss slot is free at the cycle.
func (sm *SM) mshrAvailable(cycle int64) bool {
	limit := sm.dev.Cfg.MSHRs
	if limit <= 0 {
		return true
	}
	n := 0
	kept := sm.mshrRelease[:0]
	for _, r := range sm.mshrRelease {
		if r > cycle {
			kept = append(kept, r)
			n++
		}
	}
	sm.mshrRelease = kept
	return n < limit
}

func newSM(id int, d *Device) *SM {
	cfg := &d.Cfg
	sm := &SM{ID: id, dev: d, l1: newCache(cfg.L1Sets, cfg.L1Ways, cfg.LineBytes)}
	for i := 0; i < cfg.SchedulersPerSM; i++ {
		sm.scheds = append(sm.scheds, newScheduler(cfg.Scheduler, cfg.TwoLevelGroup))
	}
	return sm
}

// BlockOf returns the block state a warp belongs to.
func (sm *SM) BlockOf(w *Warp) *BlockState { return sm.Blocks[w.BlockSlot] }

// dispatch places grid blocks into free slots until occupancy is reached.
func (sm *SM) dispatch() {
	d := sm.dev
	for d.nextBlock < d.launch.Grid.Count() {
		slot := -1
		for i, b := range sm.Blocks {
			if b.GlobalID == -1 {
				slot = i
				break
			}
		}
		if slot == -1 {
			if len(sm.Blocks) < d.blocksPerSM {
				sm.Blocks = append(sm.Blocks, &BlockState{Slot: len(sm.Blocks), GlobalID: -1})
				slot = len(sm.Blocks) - 1
			} else {
				return
			}
		}
		sm.placeBlock(sm.Blocks[slot], d.nextBlock)
		d.nextBlock++
	}
}

// placeBlock initializes warps for global block gb in the given slot.
func (sm *SM) placeBlock(b *BlockState, gb int) {
	d := sm.dev
	l := d.launch
	threads := l.Block.Count()
	warpsPerBlock := (threads + d.Cfg.WarpSize - 1) / d.Cfg.WarpSize

	b.GlobalID = gb
	b.BarGen = 0
	if n := l.Prog.SharedBytes / 4; len(b.Shared) != n {
		b.Shared = make([]uint32, n)
	} else {
		for i := range b.Shared {
			b.Shared[i] = 0
		}
	}
	b.WarpIdx = b.WarpIdx[:0]
	b.liveWarps = warpsPerBlock

	nregs := l.Prog.NumRegs
	localWords := (l.Prog.LocalBytes + 3) / 4
	for wi := 0; wi < warpsPerBlock; wi++ {
		w := &Warp{
			ID:          len(sm.Warps),
			BlockSlot:   b.Slot,
			GlobalBlock: gb,
			WarpInBlock: wi,
			Age:         d.ageSeq,
		}
		d.ageSeq++
		// Reuse a retired warp object slot if available.
		reused := false
		for i, old := range sm.Warps {
			if old == nil {
				w.ID = i
				sm.Warps[i] = w
				reused = true
				break
			}
		}
		if !reused {
			sm.Warps = append(sm.Warps, w)
		}
		b.WarpIdx = append(b.WarpIdx, w.ID)

		var mask uint32
		w.laneThread = make([]int, d.Cfg.WarpSize)
		w.Regs = make([][]uint32, d.Cfg.WarpSize)
		w.Preds = make([]uint8, d.Cfg.WarpSize)
		w.local = make([][]uint32, d.Cfg.WarpSize)
		for lane := 0; lane < d.Cfg.WarpSize; lane++ {
			t := wi*d.Cfg.WarpSize + lane
			if t < threads {
				mask |= 1 << lane
				w.laneThread[lane] = t
				w.Regs[lane] = make([]uint32, nregs)
				if localWords > 0 {
					w.local[lane] = make([]uint32, localWords)
				}
			} else {
				w.laneThread[lane] = -1
			}
		}
		w.AliveMask = mask
		w.Stack = SIMTStack{{PC: 0, RPC: len(l.Prog.Insts), Mask: mask}}
		w.regReady = make([]int64, nregs)
		sm.liveWarps++
	}
}

// retireWarp handles a warp that just finished.
func (sm *SM) retireWarp(w *Warp) {
	sm.liveWarps--
	b := sm.BlockOf(w)
	b.liveWarps--
	sm.checkBarrierRelease(b)
	if b.liveWarps == 0 {
		sm.dev.Stats.BlocksRun++
		sm.dev.blocksDone++
		gb := b.GlobalID
		b.GlobalID = -1
		for _, wi := range b.WarpIdx {
			sm.Warps[wi] = nil
		}
		b.WarpIdx = b.WarpIdx[:0]
		sm.dev.hooks.onBlockDone(sm.dev, sm, gb)
		sm.dispatch()
	}
}

// arriveBarrier implements bar.sync with generation counting: a warp
// re-executing a barrier whose generation already released (recovery
// replay) passes through immediately.
func (sm *SM) arriveBarrier(w *Warp) {
	b := sm.BlockOf(w)
	if w.BarGen < b.BarGen {
		w.BarGen++
		return
	}
	w.AtBarrier = true
	sm.checkBarrierRelease(b)
}

// checkBarrierRelease releases the block barrier when every live warp of
// the current generation has arrived.
func (sm *SM) checkBarrierRelease(b *BlockState) {
	waiting := 0
	for _, wi := range b.WarpIdx {
		w := sm.Warps[wi]
		if w == nil || w.Finished {
			continue
		}
		if w.BarGen > b.BarGen || (w.BarGen == b.BarGen && w.AtBarrier) {
			waiting++
		} else {
			return // someone has not arrived yet
		}
	}
	if waiting == 0 {
		return
	}
	b.BarGen++
	for _, wi := range b.WarpIdx {
		w := sm.Warps[wi]
		if w == nil || w.Finished {
			continue
		}
		if w.AtBarrier && w.BarGen == b.BarGen-1 {
			w.AtBarrier = false
			w.BarGen = b.BarGen
		}
	}
}

// ResetBarrierGen rewinds the block barrier generation (collective
// section recovery): the block's released-generation counter is set to
// the minimum of its warps' generations so replayed warps re-synchronize.
func (sm *SM) ResetBarrierGen(b *BlockState) {
	min := -1
	for _, wi := range b.WarpIdx {
		w := sm.Warps[wi]
		if w == nil || w.Finished {
			continue
		}
		if min == -1 || w.BarGen < min {
			min = w.BarGen
		}
	}
	if min >= 0 {
		b.BarGen = min
	}
}

// step runs one cycle of this SM. It returns the first simulation error.
func (sm *SM) step(cycle int64) error {
	if sm.liveWarps == 0 {
		sm.dispatch()
		if sm.liveWarps == 0 {
			return nil
		}
	}
	d := sm.dev
	prog := d.launch.Prog
	nsched := len(sm.scheds)
	var readyBuf [64]int
	for si, sched := range sm.scheds {
		// Partition: warp i belongs to scheduler i%nsched.
		ready := readyBuf[:0]
		havework := false
		for wi := si; wi < len(sm.Warps); wi += nsched {
			w := sm.Warps[wi]
			if w == nil || w.Finished {
				continue
			}
			havework = true
			if w.Suspended {
				d.Stats.RBQWaitCycles++
				continue
			}
			if w.AtBarrier {
				d.Stats.BarrierWaits++
				continue
			}
			if !w.depsReady(&prog.Insts[w.PC()], cycle) {
				continue
			}
			// Structural hazards.
			in := &prog.Insts[w.PC()]
			if in.Op.IsMemory() {
				if sm.lsuBusyUntil > cycle {
					continue
				}
				if in.Space == isa.SpaceGlobal && !sm.mshrAvailable(cycle) {
					continue
				}
			}
			if in.Op.IsSFU() && sm.sfuBusyUntil > cycle {
				continue
			}
			if !d.hooks.beforeIssue(d, sm, w) {
				continue
			}
			ready = append(ready, wi)
		}
		if len(ready) == 0 {
			if havework {
				d.Stats.StallCycles++
			}
			continue
		}
		pick := sched.pick(sm.Warps, ready, cycle)
		if pick < 0 {
			d.Stats.StallCycles++
			continue
		}
		w := sm.Warps[pick]
		w.LastIssue = cycle
		if err := sm.execute(w, cycle); err != nil {
			return err
		}
		if w.Finished {
			sm.retireWarp(w)
			sched.reset()
		}
	}
	return nil
}
