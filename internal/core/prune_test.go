package core

import (
	"reflect"
	"testing"

	"flame/internal/flame"
	"flame/internal/isa"
)

// deadTailSpec is saxpy with a deliberately dead computation chain
// appended: r20/r21 feed no store, branch, or address, so strikes
// landing on their defining instructions are provably masked — the
// workload that exercises pruned-masked (not just pruned-no-injection).
func deadTailSpec() *KernelSpec {
	const src = `
	    mov r0, %tid.x
	    mov r1, %ctaid.x
	    mov r2, %ntid.x
	    mad r3, r1, r2, r0
	    shl r4, r3, 2
	    ld.param r5, [0]
	    add r6, r5, r4
	    ld.global r7, [r6]
	    add r20, r7, 5
	    mul r21, r20, 3
	    add r22, r21, r20
	    add r8, r7, r7
	    st.global [r6], r8
	    xor r23, r8, r22
	    exit
	`
	const n = 4 * 64
	return &KernelSpec{
		Name:     "deadtail",
		Prog:     isa.MustParse("deadtail", src),
		Grid:     isa.Dim3{X: 4},
		Block:    isa.Dim3{X: 64},
		Params:   []uint32{0},
		MemBytes: 1 << 12,
		Setup: func(mem []uint32) {
			for i := 0; i < n; i++ {
				mem[i] = uint32(i)
			}
		},
		Validate: func(mem []uint32) error {
			for i := 0; i < n; i++ {
				if mem[i] != uint32(2*i) {
					return errAt(i, mem[i])
				}
			}
			return nil
		},
	}
}

// TestStoreReachSliceContainsACL pins AddressControlSlice ⊆
// StoreReachSlice: a statically-dead register is never an excluded
// site, so the pruner's Excluded accounting can't diverge from the
// injector's.
func TestStoreReachSliceContainsACL(t *testing.T) {
	for _, spec := range []*KernelSpec{saxpySpec(), deadTailSpec(), stepSpec()} {
		acl := flame.AddressControlSlice(spec.Prog)
		srs := flame.StoreReachSlice(spec.Prog)
		for r := range acl {
			if !srs[r] {
				t.Errorf("%s: %s in address/control slice but not store-reach slice", spec.Name, r)
			}
		}
	}
}

// TestPruneDisabledForControllerSchemes: detecting schemes report every
// strike regardless of value-deadness, so the index must refuse them.
func TestPruneDisabledForControllerSchemes(t *testing.T) {
	cfg := testCfg()
	spec := saxpySpec()
	g, err := GoldenRun(cfg, spec, FlameOptions())
	if err != nil {
		t.Fatal(err)
	}
	px := BuildPruneIndex(cfg, spec, g, 0)
	if px.Disabled() == "" {
		t.Fatal("prune index accepted a scheme with a runtime controller")
	}
	if tr, ok := px.PruneTrial(g, TrialSpec{Arms: []int64{0}, Seed: 1}); ok {
		t.Fatalf("disabled index pruned a trial: %+v", tr)
	}
}

// TestPruneTrialMatchesSimulation is the pruning-equivalence contract:
// over an exhaustive grid of arms × seeds × models × workloads, every
// trial the pruner accepts must be bit-identical — every TrialResult
// field, including the Description — to full simulation, and skipping
// pruned trials must not perturb the results of the trials a pooled
// engine still simulates.
func TestPruneTrialMatchesSimulation(t *testing.T) {
	cfg := testCfg()
	specs := []*KernelSpec{deadTailSpec(), saxpySpec(), stepSpec(), spinSpec()}
	prunedTotal, masked := 0, 0
	for _, spec := range specs {
		g, err := GoldenRun(cfg, spec, Options{Scheme: Baseline})
		if err != nil {
			t.Fatal(err)
		}
		px := BuildPruneIndex(cfg, spec, g, 0)
		if px.Disabled() != "" {
			t.Logf("%s: pruning disabled: %s", spec.Name, px.Disabled())
			continue
		}
		for _, model := range []flame.FaultModel{flame.DataSlice, flame.FullSite} {
			for _, strikes := range []int{1, 2} {
				engAll := NewEngine(cfg)    // simulates every trial
				engPruned := NewEngine(cfg) // simulates only unpruned trials
				for i := int64(0); i < 40; i++ {
					arms := []int64{(i * g.Window) / 36}
					if strikes == 2 {
						arms = append(arms, (i*g.Window)/36+g.Window/10)
					}
					ts := TrialSpec{
						Arms: arms, Model: model,
						Seed:      i*2654435761 + 1000,
						MaxCycles: g.HangBudget(0),
					}
					sim := engAll.RunTrial(spec, g, ts)
					pruned, ok := px.PruneTrial(g, ts)
					if !ok {
						fromPooled := engPruned.RunTrial(spec, g, ts)
						if !reflect.DeepEqual(sim, fromPooled) {
							t.Fatalf("%s/%v/%d trial %d: skipping earlier pruned trials perturbed simulation:\n all: %+v\nskip: %+v",
								spec.Name, model, strikes, i, sim, fromPooled)
						}
						continue
					}
					prunedTotal++
					if pruned.Outcome == OutcomeMasked {
						masked++
					}
					if !reflect.DeepEqual(sim, pruned) {
						t.Fatalf("%s/%v/%d trial %d (arms %v): pruned diverges:\n   sim: %+v\npruned: %+v",
							spec.Name, model, strikes, i, arms, sim, pruned)
					}
				}
			}
		}
	}
	if prunedTotal == 0 {
		t.Fatal("grid pruned no trials; equivalence test is vacuous")
	}
	if masked == 0 {
		t.Fatal("grid pruned no MASKED trials (only no-injection); dead-register path untested")
	}
	t.Logf("pruned %d trials (%d masked) across the grid", prunedTotal, masked)
}
