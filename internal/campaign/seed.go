package campaign

// splitmix64 is the standard SplitMix64 mixer (Steele, Lea & Flood,
// OOPSLA 2014). The campaign derives every trial's seed from the
// campaign seed, the benchmark name and the trial index through it, so
// trial t of benchmark b sees the same randomness no matter which worker
// runs it, in what order, or how many workers exist — the aggregate
// report is bit-identical across -parallel settings.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64 hashes a string (FNV-1a) to fold benchmark names into the seed
// stream.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// benchSeed derives the per-benchmark seed stream root.
func benchSeed(campaignSeed uint64, name string) uint64 {
	return splitmix64(campaignSeed ^ fnv64(name))
}

// trialSeed derives trial t's seed from a benchmark stream root.
func trialSeed(bench uint64, t int) int64 {
	return int64(splitmix64(bench + uint64(t) + 1))
}
