package telemetry_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"flame/internal/bench"
	"flame/internal/core"
	"flame/internal/gpu"
	"flame/internal/telemetry"
)

// testArch is a 4-SM GTX480: small enough for fast tests, big enough
// that slot attribution spans SMs with different dispatch shares.
func testArch(noskip bool) gpu.Config {
	cfg := gpu.GTX480()
	cfg.NumSMs = 4
	cfg.NoCycleSkip = noskip
	return cfg
}

func runBench(t *testing.T, cfg gpu.Config, name string, opt core.Options, extra *gpu.Hooks) *core.Result {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec()
	comp, err := core.Compile(spec.Prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCompiledOpts(cfg, spec, comp, nil, core.RunOpts{Hooks: extra})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSlotInvariants asserts the taxonomy is an exact partition of the
// machine's issue capacity: credited slots sum to Cycles × SMs ×
// schedulers, issued slots equal Stats.Issued, and the four stall
// reasons sum to Stats.StallCycles — per benchmark, per scheme,
// including multi-launch workloads.
func TestSlotInvariants(t *testing.T) {
	for _, scheme := range []struct {
		name string
		opt  core.Options
	}{
		{"baseline", core.Options{Scheme: core.Baseline}},
		{"flame", core.FlameOptions()},
	} {
		for _, name := range []string{"Triad", "SGEMM", "BFS"} {
			t.Run(scheme.name+"/"+name, func(t *testing.T) {
				cfg := testArch(false)
				col := telemetry.NewCollector(&cfg)
				res := runBench(t, cfg, name, scheme.opt, col.Hooks())

				slots := int64(cfg.NumSMs) * int64(cfg.SchedulersPerSM) * res.Stats.Cycles
				if got := col.TotalSlots(); got != slots {
					t.Errorf("total slots %d, want Cycles×SMs×scheds = %d", got, slots)
				}
				tot := col.Totals()
				if tot[gpu.SlotIssued] != res.Stats.Issued {
					t.Errorf("issued slots %d, want Stats.Issued %d",
						tot[gpu.SlotIssued], res.Stats.Issued)
				}
				stall := tot[gpu.SlotScoreboard] + tot[gpu.SlotMemory] +
					tot[gpu.SlotBarrier] + tot[gpu.SlotRBQ]
				if stall != res.Stats.StallCycles {
					t.Errorf("stall slots %d, want Stats.StallCycles %d",
						stall, res.Stats.StallCycles)
				}
				// Per-warp rows must agree with the per-SM rows they roll
				// up into for warp-attributed reasons.
				for sm := 0; sm < cfg.NumSMs; sm++ {
					var issued int64
					for w := 0; w < cfg.MaxWarpsPerSM; w++ {
						issued += col.Warp(sm, w)[gpu.SlotIssued]
					}
					if issued != col.SM(sm)[gpu.SlotIssued] {
						t.Errorf("SM%d: per-warp issued %d != per-SM %d",
							sm, issued, col.SM(sm)[gpu.SlotIssued])
					}
				}
			})
		}
	}
}

// TestSlotSkipEquivalence asserts the tentpole bit-identity claim: the
// full per-SM and per-warp attribution CSVs are byte-identical with and
// without event-driven cycle skipping, under the flame scheme whose RBQ
// suspensions exercise the hook-bounded skip paths.
func TestSlotSkipEquivalence(t *testing.T) {
	for _, name := range []string{"Triad", "SGEMM", "BFS"} {
		t.Run(name, func(t *testing.T) {
			dump := func(noskip bool) (string, string, [gpu.NumSlotReasons]int64) {
				cfg := testArch(noskip)
				col := telemetry.NewCollector(&cfg)
				runBench(t, cfg, name, core.FlameOptions(), col.Hooks())
				var sm, warp bytes.Buffer
				if err := col.WriteCSV(&sm); err != nil {
					t.Fatal(err)
				}
				if err := col.WriteWarpCSV(&warp); err != nil {
					t.Fatal(err)
				}
				return sm.String(), warp.String(), col.Totals()
			}
			smN, warpN, totN := dump(true)
			smF, warpF, totF := dump(false)
			if smN != smF {
				t.Errorf("per-SM attribution diverges:\n naive:\n%s\n fast:\n%s", smN, smF)
			}
			if warpN != warpF {
				t.Errorf("per-warp attribution diverges")
			}
			if totN != totF {
				t.Errorf("totals diverge: %v vs %v", totN, totF)
			}
			if totN[gpu.SlotRBQ] == 0 {
				t.Errorf("%s under flame never booked an RBQ slot; taxonomy not exercised", name)
			}
		})
	}
}

// TestSamplerSkipEquivalence asserts the interval series is identical
// with and without skipping: the sampler's OnAdvance stops jumps at
// sample boundaries, so cumulative counters at each boundary match the
// naive loop exactly.
func TestSamplerSkipEquivalence(t *testing.T) {
	series := func(noskip bool) []byte {
		cfg := testArch(noskip)
		col := telemetry.NewCollector(&cfg)
		smp := telemetry.NewSampler(100)
		smp.Collector = col
		runBench(t, cfg, "Triad", core.FlameOptions(),
			gpu.CombineHooks(col.Hooks(), smp.Hooks()))
		if len(smp.Samples) < 3 {
			t.Fatalf("only %d samples; shrink the interval", len(smp.Samples))
		}
		var buf bytes.Buffer
		if err := smp.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	naive, fast := series(true), series(false)
	if !bytes.Equal(naive, fast) {
		t.Errorf("interval series diverges:\n naive:\n%s\n fast:\n%s", naive, fast)
	}
}

// perfettoDoc mirrors the trace_event JSON envelope for assertions.
type perfettoDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestPerfettoTrace asserts the exported trace is valid trace_event
// JSON and shows the paper's latency-hiding claim: RBQ-suspension spans
// during which *other* warps keep issuing.
func TestPerfettoTrace(t *testing.T) {
	cfg := testArch(false)
	tw := telemetry.NewTraceWriter()
	runBench(t, cfg, "Triad", core.FlameOptions(), tw.Hooks())

	var buf bytes.Buffer
	if err := tw.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Pair up rbq-wait B/E spans per (SM, warp) track.
	type track struct{ pid, tid int }
	type span struct {
		track
		begin, end int64
	}
	open := map[track]int64{}
	var spans []span
	issues := 0
	for _, e := range doc.TraceEvents {
		k := track{e.PID, e.TID}
		switch {
		case e.Name == "rbq-wait" && e.Ph == "B":
			open[k] = e.TS
		case e.Name == "rbq-wait" && e.Ph == "E":
			b, ok := open[k]
			if !ok {
				t.Fatalf("rbq-wait E without B on SM%d/warp%d at ts=%d", e.PID, e.TID, e.TS)
			}
			delete(open, k)
			spans = append(spans, span{k, b, e.TS})
		case e.Ph == "X":
			issues++
		}
	}
	if len(open) != 0 {
		t.Errorf("%d rbq-wait spans left open", len(open))
	}
	if len(spans) == 0 {
		t.Fatal("no rbq-wait spans; flame run should suspend warps at boundaries")
	}
	if issues == 0 {
		t.Fatal("no issue events")
	}

	// The headline overlap: during some warp's RBQ suspension, another
	// warp on the same SM issued.
	overlap := false
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		for _, s := range spans {
			if e.PID == s.pid && e.TID != s.tid && e.TS >= s.begin && e.TS < s.end {
				overlap = true
				break
			}
		}
		if overlap {
			break
		}
	}
	if !overlap {
		t.Error("no issue event overlaps another warp's rbq-wait span; latency hiding invisible")
	}
}

// TestStatsRoundTrip asserts the reflection exporter covers every
// gpu.Stats field: a struct with every counter set to a distinct value
// survives CSV and JSON round-trips bit-exactly, so a new counter can
// never be silently dropped from reports.
func TestStatsRoundTrip(t *testing.T) {
	var s gpu.Stats
	v := reflect.ValueOf(&s).Elem()
	if v.NumField() != len(telemetry.StatsFields()) {
		t.Fatalf("StatsFields covers %d of %d struct fields",
			len(telemetry.StatsFields()), v.NumField())
	}
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(1_000_003 + i))
	}

	t.Run("csv", func(t *testing.T) {
		var buf bytes.Buffer
		if err := telemetry.WriteStatsCSV(&buf, &s); err != nil {
			t.Fatal(err)
		}
		recs, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("want header+record, got %d rows", len(recs))
		}
		vals := make([]int64, len(recs[1]))
		for i, f := range recs[1] {
			if vals[i], err = strconv.ParseInt(f, 10, 64); err != nil {
				t.Fatal(err)
			}
		}
		got, err := telemetry.StatsFromValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("csv round-trip mismatch:\n want %+v\n  got %+v", s, got)
		}
	})

	t.Run("json", func(t *testing.T) {
		var buf bytes.Buffer
		if err := telemetry.WriteStatsJSON(&buf, &s); err != nil {
			t.Fatal(err)
		}
		var m map[string]int64
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, 0, len(telemetry.StatsFields()))
		for _, f := range telemetry.StatsFields() {
			x, ok := m[f]
			if !ok {
				t.Fatalf("field %s missing from JSON export", f)
			}
			vals = append(vals, x)
		}
		got, err := telemetry.StatsFromValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("json round-trip mismatch:\n want %+v\n  got %+v", s, got)
		}
	})
}

// TestCollectorResetAndTable smoke-tests the human-readable surface.
func TestCollectorResetAndTable(t *testing.T) {
	cfg := testArch(false)
	col := telemetry.NewCollector(&cfg)
	runBench(t, cfg, "Triad", core.Options{Scheme: core.Baseline}, col.Hooks())
	if col.TotalSlots() == 0 {
		t.Fatal("no slots collected")
	}
	tab := col.Table()
	for _, want := range []string{"issued", "scoreboard", "memory", "least-issuing"} {
		if !bytes.Contains([]byte(tab), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	col.Reset()
	if col.TotalSlots() != 0 {
		t.Error("Reset left credits behind")
	}
}
